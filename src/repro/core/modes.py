"""Ends-free alignment modes (semiglobal / overlap), FastLSA-backed.

The paper treats global alignment; practical homology search also needs
*ends-free* variants where gaps at chosen sequence ends are unpenalised:

* **semiglobal** ("glocal"): a query aligned wholly inside a target —
  leading and trailing *target* symbols are free;
* **overlap** (dovetail): a suffix of one sequence against a prefix of
  the other, as in read assembly;
* arbitrary combinations via :class:`EndsFree` flags.

The construction mirrors :mod:`repro.core.local`'s three phases, all in
linear space:

1. a rolling forward sweep with zeroed boundaries on the *free-start*
   sides finds the best score over the *free-end* region;
2. a rolling global sweep over the reversed bracketed prefixes finds the
   matching start cell (skipped prefixes cost nothing, so the bracketed
   global score must equal the best);
3. FastLSA aligns the bracketed sub-sequences exactly.

Scores follow the ends-free convention: skipped end segments contribute 0.
The returned :class:`EndsFreeAlignment` carries the fully-validated inner
global alignment plus the skip offsets, and can render the conventional
padded view.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..align.alignment import Alignment
from ..align.sequence import as_sequence
from ..kernels.affine import NEG_INF
from ..kernels.ops import KernelInstruments
from ..scoring.scheme import ScoringScheme
from .config import FastLSAConfig, resolve_config
from .fastlsa import fastlsa

__all__ = [
    "EndsFree",
    "EndsFreeAlignment",
    "ends_free_align",
    "semiglobal_align",
    "overlap_align",
]


@dataclass(frozen=True)
class EndsFree:
    """Which sequence ends may be skipped without penalty.

    ``a`` indexes DPM rows, ``b`` columns.  All-``False`` is plain global
    alignment.  Ends-free semantics are the classic boundary convention:
    the alignment starts on DPM row 0 *or* column 0 (a prefix of at most
    one sequence is skipped, gated by the ``*_start`` flags) and ends on
    the last row *or* last column (``*_end`` flags).  Skipping prefixes
    (or suffixes) of *both* sequences simultaneously is local alignment —
    use :func:`repro.core.local.fastlsa_local` for that.
    """

    a_start: bool = False
    a_end: bool = False
    b_start: bool = False
    b_end: bool = False

    @property
    def any(self) -> bool:
        """True when at least one end is free."""
        return self.a_start or self.a_end or self.b_start or self.b_end


@dataclass
class EndsFreeAlignment:
    """Result of an ends-free alignment.

    Attributes
    ----------
    alignment:
        Validated global :class:`Alignment` of the bracketed cores
        ``a[a_start:a_end]`` / ``b[b_start:b_end]``.
    a_start, a_end, b_start, b_end:
        The bracketed (aligned) ranges; skipped end segments lie outside.
    score:
        The ends-free score (skipped segments contribute 0).
    free:
        The flag set the alignment was computed under.
    """

    alignment: Alignment
    a_start: int
    a_end: int
    b_start: int
    b_end: int
    score: int
    free: EndsFree

    def render(self, width: int = 60) -> str:
        """Conventional padded view: skipped ends shown against gaps."""
        from ..align.format import format_alignment

        seq_a = self.alignment.seq_a
        seq_b = self.alignment.seq_b
        header = (
            f"# ends-free score={self.score}  "
            f"a[{self.a_start}:{self.a_end}] x b[{self.b_start}:{self.b_end}]  "
            f"free={self.free}"
        )
        return header + "\n" + format_alignment(self.alignment, width=width, show_header=False)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EndsFreeAlignment(score={self.score}, "
            f"a[{self.a_start}:{self.a_end}], b[{self.b_start}:{self.b_end}])"
        )


def _boundaries(scheme: ScoringScheme, M: int, N: int, free_rows: bool, free_cols: bool):
    """Row-0 / col-0 H boundaries with optional zeroing."""
    if free_cols:
        row = np.zeros(N + 1, dtype=np.int64)
    else:
        row = scheme.boundary_row(N)
    if free_rows:
        col = np.zeros(M + 1, dtype=np.int64)
    else:
        col = scheme.boundary_row(M)
    return row, col


def _sweep_best(
    a_codes: np.ndarray,
    b_codes: np.ndarray,
    scheme: ScoringScheme,
    free_a_start: bool,
    free_b_start: bool,
    end_rows_free: bool,
    end_cols_free: bool,
    counter,
) -> Tuple[int, int, int]:
    """Rolling sweep; returns ``(best, i, j)`` over the allowed end region.

    The end region is: the corner always; the last column for any ``i``
    when ``end_rows_free`` (trailing ``a`` skippable); the last row for
    any ``j`` when ``end_cols_free`` (trailing ``b`` skippable).
    """
    M, N = len(a_codes), len(b_codes)
    table = scheme.matrix.table
    row_h, col_h = _boundaries(scheme, M, N, free_a_start, free_b_start)

    best, bi, bj = None, 0, 0

    def consider(value: int, i: int, j: int) -> None:
        nonlocal best, bi, bj
        if best is None or value > best:
            best, bi, bj = int(value), i, j

    # Row-0 end candidates: (0, N) skips all of a (needs end_rows_free,
    # or M == 0 where row 0 is the last row).  (0, j) with j < N is only
    # a legal end when row 0 IS the last row (M == 0): otherwise it would
    # skip trailing parts of both sequences, which is local alignment.
    if M == 0 or end_rows_free:
        consider(row_h[N], 0, N)
    if M == 0 and end_cols_free and N > 0:
        jm = int(np.argmax(row_h))
        consider(row_h[jm], 0, jm)
    if M == 0:
        return best, bi, bj
    if N == 0:
        consider(col_h[M], M, 0)
        if end_rows_free:
            im = int(np.argmax(col_h))
            consider(col_h[im], im, 0)
        return best, bi, bj
    if counter is not None:
        counter.add_cells(M * N)

    if scheme.is_linear:
        gap = scheme.gap_open
        gj = np.arange(N + 1, dtype=np.int64) * gap
        prev = row_h.copy()
        t = np.empty(N + 1, dtype=np.int64)
        for i in range(1, M + 1):
            s = table[a_codes[i - 1]][b_codes]
            v = np.maximum(prev[:-1] + s, prev[1:] + gap)
            t[0] = col_h[i]
            np.subtract(v, gj[1:], out=t[1:])
            np.maximum.accumulate(t, out=t)
            cur = t + gj
            cur[0] = col_h[i]
            if end_rows_free:
                consider(cur[N], i, N)
            if i == M:
                consider(cur[N], M, N)
                if end_cols_free:
                    jm = int(np.argmax(cur))
                    consider(cur[jm], M, jm)
            prev = cur
        return best, bi, bj

    open_, extend = scheme.gap_open, scheme.gap_extend
    ej = np.arange(N + 1, dtype=np.int64) * extend
    prev_h = row_h.copy()
    prev_f = np.full(N + 1, NEG_INF, dtype=np.int64)
    col_e = np.full(M + 1, NEG_INF, dtype=np.int64)
    t = np.empty(N, dtype=np.int64)
    for i in range(1, M + 1):
        s = table[a_codes[i - 1]][b_codes]
        cur_f = np.maximum(prev_h + open_, prev_f + extend)
        cur_f[0] = NEG_INF
        v = np.maximum(prev_h[:-1] + s, cur_f[1:])
        t[0] = max(col_h[i] + open_ - extend, col_e[i])
        if N > 1:
            np.subtract(v[:-1] + (open_ - extend), ej[1:N], out=t[1:])
        np.maximum.accumulate(t, out=t)
        e = t + ej[1:]
        cur_h = np.empty(N + 1, dtype=np.int64)
        np.maximum(v, e, out=cur_h[1:])
        cur_h[0] = col_h[i]
        if end_rows_free:
            consider(cur_h[N], i, N)
        if i == M:
            consider(cur_h[N], M, N)
            if end_cols_free:
                jm = int(np.argmax(cur_h))
                consider(cur_h[jm], M, jm)
        prev_h, prev_f = cur_h, cur_f
    return best, bi, bj


def ends_free_align(
    seq_a,
    seq_b,
    scheme: ScoringScheme,
    free: EndsFree,
    k: Optional[int] = None,
    base_cells: Optional[int] = None,
    config: Optional[FastLSAConfig] = None,
    instruments: Optional[KernelInstruments] = None,
) -> EndsFreeAlignment:
    """Align under arbitrary ends-free flags, in linear space.

    The aligned core is bracketed by two rolling sweeps and solved
    exactly with FastLSA under the configured budget.  Parameterize via
    ``config=`` (including ``band``/``kernel``, which apply to the
    bracketed core's FastLSA run); the legacy ``k=`` / ``base_cells=``
    keywords now raise ConfigError.
    """
    cfg = resolve_config(config, k, base_cells, where="ends_free_align")
    a = as_sequence(seq_a, "a")
    b = as_sequence(seq_b, "b")
    inst = instruments or KernelInstruments()
    t0 = time.perf_counter()
    a_codes = scheme.encode(a.text)
    b_codes = scheme.encode(b.text)

    # Phase 1: best end over the free-end region.
    best, ei, ej = _sweep_best(
        a_codes, b_codes, scheme,
        free_a_start=free.a_start, free_b_start=free.b_start,
        end_rows_free=free.a_end, end_cols_free=free.b_end,
        counter=inst.ops,
    )

    # Phase 2: best start via the reversed bracketed prefixes.  Skipped
    # prefixes cost nothing, so the global score of the bracketed core
    # equals `best`; the reversed sweep's free-END flags are the original
    # free-START flags.
    rbest, ri, rj = _sweep_best(
        a_codes[:ei][::-1], b_codes[:ej][::-1], scheme,
        free_a_start=False, free_b_start=False,
        end_rows_free=free.a_start, end_cols_free=free.b_start,
        counter=inst.ops,
    )
    if rbest != best:
        raise AssertionError(
            f"ends-free sweeps disagree: {best} != {rbest} (library bug)"
        )
    si, sj = ei - ri, ej - rj

    # Phase 3: exact global alignment of the core.
    inner = fastlsa(
        a.slice(si, ei), b.slice(sj, ej), scheme, config=cfg, instruments=inst
    )
    inner.algorithm = "fastlsa-ends-free"
    inner.stats.wall_time = time.perf_counter() - t0
    if inner.score != best:
        raise AssertionError(
            f"bracketed core score {inner.score} != sweep best {best} (library bug)"
        )
    return EndsFreeAlignment(
        alignment=inner,
        a_start=si,
        a_end=ei,
        b_start=sj,
        b_end=ej,
        score=int(best),
        free=free,
    )


def semiglobal_align(
    query,
    target,
    scheme: ScoringScheme,
    **kwargs,
) -> EndsFreeAlignment:
    """Align ``query`` wholly inside ``target`` (free target ends).

    The query occupies DPM rows and must be fully consumed; leading and
    trailing target symbols are skipped free — the classic "fit" /
    glocal mode for finding a gene in a chromosome.
    """
    return ends_free_align(
        query, target, scheme,
        free=EndsFree(b_start=True, b_end=True), **kwargs,
    )


def overlap_align(
    seq_a,
    seq_b,
    scheme: ScoringScheme,
    **kwargs,
) -> EndsFreeAlignment:
    """Dovetail alignment: a suffix of ``seq_a`` against a prefix of
    ``seq_b`` (free leading ``a``, free trailing ``b``) — the
    read-assembly overlap mode."""
    return ends_free_align(
        seq_a, seq_b, scheme,
        free=EndsFree(a_start=True, b_end=True), **kwargs,
    )
