"""Linear-space local alignment built on FastLSA (extension).

The paper treats global alignment; local (Smith–Waterman-style) alignment
composes naturally with FastLSA using the classic three-phase linear-space
construction:

1. a rolling **clamped** sweep over the whole DPM locates the best local
   score and its end cell ``(bi, bj)``;
2. a rolling **global** sweep over the *reversed* prefixes ``a[:bi]`` /
   ``b[:bj]`` locates the start cell: the reversed optimal local alignment
   is a global alignment of those prefixes, so the cell whose global score
   equals the best local score marks the start;
3. FastLSA globally aligns the bracketed sub-sequences in the configured
   memory budget.

Total extra cost: two linear-space sweeps (≈ ``2·m·n`` cells) before the
FastLSA run; space stays linear outside the base-case buffer.
"""

from __future__ import annotations

import time
from typing import Optional, Tuple

import numpy as np

from ..align.sequence import as_sequence
from ..baselines.smith_waterman import LocalAlignment
from ..align.alignment import alignment_from_path
from ..align.path import AlignmentPath
from ..kernels import registry
from ..kernels.affine import NEG_INF
from ..kernels.ops import KernelInstruments
from ..scoring.scheme import ScoringScheme
from .config import FastLSAConfig, resolve_config
from .fastlsa import fastlsa

__all__ = ["fastlsa_local", "local_best_cell"]


def local_best_cell(
    seq_a, seq_b, scheme: ScoringScheme, counter=None
) -> Tuple[int, int, int]:
    """Best local score and its end cell, in linear space: ``(score, i, j)``.

    One rolling clamped (Smith–Waterman) sweep — no traceback, no
    alignment materialisation.  This is the public scoring tier: rankers
    (:func:`repro.core.batch.batch_align`, :mod:`repro.search`) call it to
    score candidates cheaply, then feed the triple back to
    :func:`fastlsa_local` via ``best_cell=`` so the full alignment does
    not repeat the sweep.
    """
    a = as_sequence(seq_a, "a")
    b = as_sequence(seq_b, "b")
    return _best_cell_local(scheme.encode(a.text), scheme.encode(b.text), scheme, counter)


def _best_cell_local(a_codes, b_codes, scheme: ScoringScheme, counter) -> Tuple[int, int, int]:
    """Rolling clamped (Smith–Waterman) sweep; returns ``(score, i, j)``
    of the best cell, preferring the first row-major maximum.

    Dispatches to the active kernel tier (:mod:`repro.kernels.registry`).
    """
    table = scheme.matrix.table
    if scheme.is_linear:
        return registry.active("linear").best_cell_local(
            a_codes, b_codes, table, scheme.gap_open, counter
        )
    return registry.active("affine").best_cell_local(
        a_codes, b_codes, table, scheme.gap_open, scheme.gap_extend, counter
    )


def _best_cell_global(a_codes, b_codes, scheme: ScoringScheme, counter) -> Tuple[int, int, int]:
    """Rolling global (NW) sweep tracking the maximum ``H`` over all cells.

    Used on reversed prefixes to locate the local alignment's start.
    """
    table = scheme.matrix.table
    M, N = len(a_codes), len(b_codes)
    if counter is not None:
        counter.add_cells(M * N)
    best, bi, bj = 0, 0, 0  # the empty alignment at the origin scores 0
    if M == 0 or N == 0:
        return best, bi, bj
    if scheme.is_linear:
        gap = scheme.gap_open
        gj = np.arange(N + 1, dtype=np.int64) * gap
        prev = gj.copy()
        t = np.empty(N + 1, dtype=np.int64)
        for i in range(1, M + 1):
            s = table[a_codes[i - 1]][b_codes]
            v = np.maximum(prev[:-1] + s, prev[1:] + gap)
            t[0] = i * gap
            np.subtract(v, gj[1:], out=t[1:])
            np.maximum.accumulate(t, out=t)
            cur = t + gj
            cur[0] = i * gap
            rm = int(np.argmax(cur))
            if cur[rm] > best:
                best, bi, bj = int(cur[rm]), i, rm
            prev = cur
        return best, bi, bj
    open_, extend = scheme.gap_open, scheme.gap_extend
    from ..kernels.affine import affine_boundaries

    row_h, row_f, col_h, col_e = affine_boundaries(M, N, open_, extend)
    ej = np.arange(N + 1, dtype=np.int64) * extend
    prev_h = row_h.copy()
    prev_f = row_f.copy()
    t = np.empty(max(N, 1), dtype=np.int64)
    for i in range(1, M + 1):
        s = table[a_codes[i - 1]][b_codes]
        cur_f = np.maximum(prev_h + open_, prev_f + extend)
        cur_f[0] = NEG_INF
        v = np.maximum(prev_h[:-1] + s, cur_f[1:])
        t[0] = max(col_h[i] + open_ - extend, col_e[i])
        if N > 1:
            np.subtract(v[:-1] + (open_ - extend), ej[1:N], out=t[1:])
        np.maximum.accumulate(t[:N], out=t[:N])
        e = t[:N] + ej[1:]
        cur_h = np.empty(N + 1, dtype=np.int64)
        np.maximum(v, e, out=cur_h[1:])
        cur_h[0] = col_h[i]
        rm = int(np.argmax(cur_h))
        if cur_h[rm] > best:
            best, bi, bj = int(cur_h[rm]), i, rm
        prev_h, prev_f = cur_h, cur_f
    return best, bi, bj


def fastlsa_local(
    seq_a,
    seq_b,
    scheme: ScoringScheme,
    k: Optional[int] = None,
    base_cells: Optional[int] = None,
    config: Optional[FastLSAConfig] = None,
    instruments: Optional[KernelInstruments] = None,
    best_cell: Optional[Tuple[int, int, int]] = None,
) -> LocalAlignment:
    """Best local alignment in linear space (FastLSA-backed).

    Returns the same :class:`~repro.baselines.smith_waterman.LocalAlignment`
    structure as the FM Smith–Waterman baseline, but without ever holding a
    dense ``m × n`` matrix.  Parameterize via ``config=``; the legacy
    ``k=`` / ``base_cells=`` keywords now raise ConfigError.

    ``best_cell`` skips phase 1: pass the ``(score, i, j)`` triple a prior
    :func:`local_best_cell` sweep produced for this exact pair and scheme
    (rankers score every candidate before materialising alignments for the
    top hits, so without the hint the sweep would run twice).  The phase-2
    reverse sweep still cross-checks the score, so a stale or mismatched
    hint fails loudly instead of producing a wrong alignment.
    """
    cfg = resolve_config(config, k, base_cells, where="fastlsa_local")
    tier = registry.resolve_tier(getattr(cfg, "kernel", None))
    a = as_sequence(seq_a, "a")
    b = as_sequence(seq_b, "b")
    inst = instruments or KernelInstruments()
    t0 = time.perf_counter()
    a_codes = scheme.encode(a.text)
    b_codes = scheme.encode(b.text)

    if best_cell is not None:
        best, bi, bj = best_cell
        if not (0 <= bi <= len(a_codes) and 0 <= bj <= len(b_codes)):
            raise AssertionError(
                f"best_cell {best_cell} outside the {len(a_codes)}x{len(b_codes)} DPM"
            )
    else:
        with registry.use(tier):
            best, bi, bj = _best_cell_local(a_codes, b_codes, scheme, inst.ops)
    if best == 0:
        empty = alignment_from_path(
            a.slice(0, 0), b.slice(0, 0), AlignmentPath([(0, 0)]), 0,
            algorithm="fastlsa-local",
        )
        return LocalAlignment(empty, 0, 0, 0, 0, 0)

    with registry.use(tier):
        rbest, ri, rj = _best_cell_global(
            a_codes[:bi][::-1], b_codes[:bj][::-1], scheme, inst.ops
        )
    if rbest != best:
        raise AssertionError(
            f"local/global sweep disagreement: {best} != {rbest} (library bug)"
        )
    i0, j0 = bi - ri, bj - rj

    alignment = fastlsa(
        a.slice(i0, bi), b.slice(j0, bj), scheme, config=cfg, instruments=inst
    )
    alignment.algorithm = "fastlsa-local"
    alignment.stats.wall_time = time.perf_counter() - t0
    if alignment.score != best:
        raise AssertionError(
            f"bracketed global score {alignment.score} != local best {best} (library bug)"
        )
    return LocalAlignment(alignment, i0, bi, j0, bj, best)
