"""FastLSA Base Case: full-matrix solve of a small sub-problem.

When a sub-problem's dense DP matrix fits in the Base Case buffer, FastLSA
computes the matrix from the cached boundary values and extends the
solution path by plain traceback (lines 1–2 of the paper's Figure 2
pseudo-code, Figure 3(a)/(b)).
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..align.path import PathBuilder
from ..faults import runtime as faults
from ..faults.plan import SITE_BASE_KERNEL
from ..kernels.fullmatrix import FullMatrices, compute_full, trace_from
from ..kernels.ops import KernelInstruments
from ..obs import runtime as obs
from ..scoring.scheme import ScoringScheme
from .cancel import checkpoint
from .problem import Problem

__all__ = ["solve_base_case", "MatrixFn"]

#: Signature of the dense-matrix computation, overridable by the parallel
#: driver (which fills the matrix with a tiled wavefront instead).
MatrixFn = Callable[..., FullMatrices]


def solve_base_case(
    problem: Problem,
    a_codes: np.ndarray,
    b_codes: np.ndarray,
    scheme: ScoringScheme,
    builder: PathBuilder,
    inst: KernelInstruments,
    matrix_fn: Optional[MatrixFn] = None,
) -> int:
    """Solve ``problem`` with the full-matrix algorithm; extend the path.

    The path head must sit at the problem's bottom-right entry.  On return
    the head lies on the problem's top row or left column and
    ``builder.layer`` reflects the Gotoh layer at the head (affine only).

    Returns the problem's bottom-right ``H`` value (the score of the
    rectangle given its boundary caches).
    """
    checkpoint()  # deadline boundary: one base case ≈ one tile
    faults.inject(SITE_BASE_KERNEL)
    ih, jh = builder.head
    if (ih, jh) != (problem.i1, problem.j1):
        raise ValueError(
            f"path head {(ih, jh)} is not the problem's bottom-right "
            f"({problem.i1}, {problem.j1})"
        )
    sub_a = a_codes[problem.i0 : problem.i1]
    sub_b = b_codes[problem.j0 : problem.j1]
    fn = matrix_fn or compute_full
    with obs.span(
        "fastlsa.base_case", category="base", rows=problem.nrows, cols=problem.ncols
    ) as sp:
        cells_before = inst.ops.cells
        if scheme.is_linear:
            mats = fn(
                sub_a, sub_b, scheme, problem.cache_row.h, problem.cache_col.h,
                counter=inst.ops,
            )
        else:
            mats = fn(
                sub_a,
                sub_b,
                scheme,
                problem.cache_row.h,
                problem.cache_col.h,
                first_row_f=problem.cache_row.f,
                first_col_e=problem.cache_col.e,
                counter=inst.ops,
            )
        inst.mem.alloc(mats.cells)
        score = mats.score
        local_points, end_layer = trace_from(
            mats, sub_a, sub_b, scheme, problem.nrows, problem.ncols, builder.layer
        )
        for (li, lj) in local_points:
            builder.append((problem.i0 + li, problem.j0 + lj))
        builder.layer = end_layer
        inst.mem.free(mats.cells)
        if sp is not None:
            filled = inst.ops.cells - cells_before
            sp.set(cells=filled, path_points=len(local_points))
            obs.counter_add("fastlsa.cells_filled", filled)
            obs.counter_add("fastlsa.base_cases", 1)
    return score
