"""Cooperative cancellation: deadlines enforced at tile boundaries.

A :class:`CancelToken` carries an optional absolute deadline (on the
:func:`time.monotonic` clock) and a manual cancel flag.  Long-running
compute paths call :func:`checkpoint` at natural tile boundaries — each
FastLSA sub-problem, each FillCache band, each wavefront tile — so a job
whose deadline passes mid-run stops within one tile instead of running to
completion (the service's deadline guarantee; see ``docs/ROBUSTNESS.md``).

Scoping uses a :class:`contextvars.ContextVar` only (no process-global):
concurrent jobs on different worker threads each see their own token,
because every thread owns a private context.  Code that fans work out to
*further* threads (the wavefront executor) captures the token once at
entry and checks it explicitly, the same pattern the obs layer uses for
its instrumentation handle.

Free when off: :func:`checkpoint` is one context-variable read.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Optional

from ..errors import JobTimeoutError

__all__ = ["CancelToken", "cancel_scope", "checkpoint", "current"]


class CancelToken:
    """A deadline plus a manual cancel flag, checked cooperatively.

    Parameters
    ----------
    deadline:
        Absolute :func:`time.monotonic` timestamp after which
        :meth:`check` raises; ``None`` disables the deadline.
    """

    __slots__ = ("deadline", "_cancelled", "reason")

    def __init__(self, deadline: Optional[float] = None) -> None:
        self.deadline = deadline
        self._cancelled = False
        self.reason = ""

    @classmethod
    def after(cls, seconds: Optional[float]) -> "CancelToken":
        """A token expiring ``seconds`` from now (``None`` → no deadline)."""
        return cls(None if seconds is None else time.monotonic() + seconds)

    def cancel(self, reason: str = "") -> None:
        """Flip the manual cancel flag; the next checkpoint raises."""
        self._cancelled = True
        self.reason = reason

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` has been called."""
        return self._cancelled

    @property
    def expired(self) -> bool:
        """True once the deadline (if any) has passed."""
        return self.deadline is not None and time.monotonic() > self.deadline

    def remaining(self) -> Optional[float]:
        """Seconds until the deadline (never negative); ``None`` if unset."""
        if self.deadline is None:
            return None
        return max(0.0, self.deadline - time.monotonic())

    def check(self) -> None:
        """Raise :class:`~repro.errors.JobTimeoutError` if cancelled/expired."""
        if self._cancelled:
            raise JobTimeoutError(self.reason or "job cancelled")
        if self.deadline is not None:
            over = time.monotonic() - self.deadline
            if over > 0:
                raise JobTimeoutError(
                    f"deadline exceeded by {over:.3f}s (cooperative cancellation)"
                )


_scoped: ContextVar[Optional[CancelToken]] = ContextVar("repro_cancel", default=None)


def current() -> Optional[CancelToken]:
    """The token governing this context, or ``None`` (no deadline)."""
    return _scoped.get()


@contextmanager
def cancel_scope(token: Optional[CancelToken]):
    """Install ``token`` for a ``with`` block (``None`` is a no-op scope)."""
    cv_token = _scoped.set(token)
    try:
        yield token
    finally:
        _scoped.reset(cv_token)


def checkpoint() -> None:
    """Raise if the scoped token is cancelled or past its deadline.

    Called between tiles/bands/sub-problems; one context-variable read
    when no token is installed.
    """
    token = _scoped.get()
    if token is not None:
        token.check()
