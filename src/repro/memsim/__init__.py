"""Trace-driven memory-hierarchy simulator (experiment F8 substrate)."""

from .cache import CacheConfig, CacheSim, CacheStats
from .hierarchy import CacheHierarchy, HierarchyConfig, HierarchyStats
from .trace import StackAllocator, trace_fastlsa, trace_full_matrix, trace_hirschberg
from .runner import CacheRunResult, compare_algorithms, run_cache_experiment

__all__ = [
    "CacheConfig",
    "CacheSim",
    "CacheStats",
    "CacheHierarchy",
    "HierarchyConfig",
    "HierarchyStats",
    "StackAllocator",
    "trace_fastlsa",
    "trace_full_matrix",
    "trace_hirschberg",
    "CacheRunResult",
    "compare_algorithms",
    "run_cache_experiment",
]
