"""Two-level cache hierarchy simulator.

Extends the single-level :class:`~repro.memsim.cache.CacheSim` to an
L1 → L2 → memory hierarchy with inclusive semantics: every access probes
L1; L1 misses probe L2; L2 misses fill both levels.  The timing model
charges each access the latency of the level that served it.

This sharpens experiment F8's story: the paper tunes FastLSA's ``k`` and
Base Case buffer against *both* cache levels ("RM may represent either
the size of cache memory or main memory"), and the two-level simulator
exposes the two distinct crossovers — working set vs L1, and vs L2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..errors import ConfigError
from .cache import CacheConfig, CacheSim

__all__ = ["HierarchyConfig", "HierarchyStats", "CacheHierarchy"]


@dataclass(frozen=True)
class HierarchyConfig:
    """Geometry + latency model of a two-level hierarchy.

    Latencies are in the same work-units as the single-level model (one
    unit ≈ one cache line's worth of DP arithmetic; see
    :meth:`repro.memsim.cache.CacheStats.time_estimate`).
    """

    l1: CacheConfig
    l2: CacheConfig
    t_l1: float = 1.0
    t_l2: float = 4.0
    t_mem: float = 16.0

    def __post_init__(self) -> None:
        if self.l2.capacity_cells < self.l1.capacity_cells:
            raise ConfigError("L2 must be at least as large as L1")
        if self.l1.line_cells != self.l2.line_cells:
            raise ConfigError("levels must share a line size")
        if not (self.t_l1 <= self.t_l2 <= self.t_mem):
            raise ConfigError("latencies must be non-decreasing down the hierarchy")


@dataclass
class HierarchyStats:
    """Per-level hit counters of one simulation."""

    l1_hits: int = 0
    l2_hits: int = 0
    mem_accesses: int = 0

    @property
    def accesses(self) -> int:
        """Total line accesses."""
        return self.l1_hits + self.l2_hits + self.mem_accesses

    @property
    def l1_hit_rate(self) -> float:
        """Fraction served by L1."""
        return self.l1_hits / self.accesses if self.accesses else 0.0

    @property
    def l2_miss_rate(self) -> float:
        """Fraction going all the way to memory."""
        return self.mem_accesses / self.accesses if self.accesses else 0.0

    def time_estimate(self, config: HierarchyConfig) -> float:
        """Total modelled time under the hierarchy's latency model."""
        return (
            self.l1_hits * config.t_l1
            + self.l2_hits * config.t_l2
            + self.mem_accesses * config.t_mem
        )


class CacheHierarchy:
    """Inclusive L1/L2 hierarchy over abstract cell addresses.

    Exposes the same ``access_cell`` / ``access_range`` interface as
    :class:`CacheSim`, so the trace generators of
    :mod:`repro.memsim.trace` drive it unchanged.
    """

    def __init__(self, config: HierarchyConfig) -> None:
        self.config = config
        self._l1 = CacheSim(config.l1)
        self._l2 = CacheSim(config.l2)
        self.stats = HierarchyStats()

    def reset(self) -> None:
        """Clear contents and counters."""
        self._l1.reset()
        self._l2.reset()
        self.stats = HierarchyStats()

    def access_line(self, line: int) -> str:
        """Touch one line; returns the serving level (``l1``/``l2``/``mem``)."""
        if self._l1.access_line(line):
            self.stats.l1_hits += 1
            return "l1"
        if self._l2.access_line(line):
            self.stats.l2_hits += 1
            return "l2"
        self.stats.mem_accesses += 1
        return "mem"

    def access_cell(self, addr: int) -> str:
        """Touch the line containing cell ``addr``."""
        return self.access_line(addr // self.config.l1.line_cells)

    def access_range(self, start: int, length: int) -> None:
        """Touch every line of the cell range ``[start, start + length)``."""
        if length <= 0:
            return
        lc = self.config.l1.line_cells
        first = start // lc
        last = (start + length - 1) // lc
        for line in range(first, last + 1):
            self.access_line(line)

    def run(self, lines: Iterable[int]) -> HierarchyStats:
        """Process an iterable of line indices."""
        for line in lines:
            self.access_line(line)
        return self.stats

    def time_estimate(self) -> float:
        """Total modelled time so far."""
        return self.stats.time_estimate(self.config)
