"""Cache-simulation experiment runner.

Drives the trace generators of :mod:`repro.memsim.trace` through a
configured :class:`~repro.memsim.cache.CacheSim` and reports per-algorithm
miss rates and modelled execution times — the machinery behind experiment
F8 ("due to memory caching effects, FastLSA is always as fast or faster").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..errors import ConfigError
from .cache import CacheConfig, CacheSim, CacheStats
from .trace import trace_fastlsa, trace_full_matrix, trace_hirschberg

__all__ = ["CacheRunResult", "run_cache_experiment", "compare_algorithms"]


@dataclass
class CacheRunResult:
    """One algorithm's simulated cache behaviour on one problem size."""

    algorithm: str
    m: int
    n: int
    stats: CacheStats

    @property
    def accesses(self) -> int:
        """Total line accesses made by the algorithm."""
        return self.stats.accesses

    @property
    def miss_rate(self) -> float:
        """Fraction of line accesses that missed."""
        return self.stats.miss_rate

    def time(self, t_hit: float = 1.0, t_miss: float = 8.0) -> float:
        """Modelled time under a two-level latency model."""
        return self.stats.time_estimate(t_hit, t_miss)


def run_cache_experiment(
    algorithm: str,
    m: int,
    n: int,
    cache: CacheConfig,
    k: int = 8,
    base_cells: int = 4096,
) -> CacheRunResult:
    """Simulate one algorithm's trace; ``algorithm`` in
    ``{"full-matrix", "hirschberg", "fastlsa"}``."""
    sim = CacheSim(cache)
    if algorithm == "full-matrix":
        trace_full_matrix(sim, m, n)
    elif algorithm == "hirschberg":
        trace_hirschberg(sim, m, n, base_cells=base_cells)
    elif algorithm == "fastlsa":
        trace_fastlsa(sim, m, n, k=k, base_cells=base_cells)
    else:
        raise ConfigError(f"unknown algorithm {algorithm!r}")
    return CacheRunResult(algorithm=algorithm, m=m, n=n, stats=sim.stats)


def compare_algorithms(
    m: int,
    n: int,
    cache: CacheConfig,
    k: int = 8,
    base_cells: int = 4096,
    t_hit: float = 1.0,
    t_miss: float = 8.0,
) -> List[Dict[str, float]]:
    """Run all three algorithms on one problem size; return report rows."""
    rows = []
    for algorithm in ("full-matrix", "hirschberg", "fastlsa"):
        res = run_cache_experiment(algorithm, m, n, cache, k=k, base_cells=base_cells)
        rows.append(
            {
                "algorithm": algorithm,
                "m": m,
                "n": n,
                "accesses": res.accesses,
                "misses": res.stats.misses,
                "miss_rate": res.miss_rate,
                "time": res.time(t_hit, t_miss),
            }
        )
    return rows
