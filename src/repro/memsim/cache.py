"""Set-associative LRU cache simulator.

The paper's empirical claim that "due to memory caching effects, FastLSA
is always as fast or faster than Hirschberg and the FM algorithms" is a
property of the algorithms' memory access patterns, not of any particular
silicon.  This trace-driven simulator reproduces it machine-independently:
feed it the cell-level access stream of an algorithm (see
:mod:`repro.memsim.trace`) and read off hit/miss counts.

Addresses are abstract *cell indices*; ``line_cells`` cells share a cache
line.  The replacement policy is LRU within each set.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, List

from ..errors import ConfigError

__all__ = ["CacheConfig", "CacheSim", "CacheStats"]


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of a simulated cache.

    Attributes
    ----------
    capacity_cells:
        Total cache capacity in DP cells.
    line_cells:
        Cells per cache line (spatial-locality granularity).
    assoc:
        Ways per set; ``assoc >= sets`` degrades to fully associative.
    """

    capacity_cells: int
    line_cells: int = 8
    assoc: int = 8

    def __post_init__(self) -> None:
        if self.capacity_cells < 1 or self.line_cells < 1 or self.assoc < 1:
            raise ConfigError(f"invalid cache geometry {self}")
        if self.capacity_cells % (self.line_cells * self.assoc):
            raise ConfigError(
                "capacity must be a multiple of line_cells * assoc "
                f"({self.line_cells} * {self.assoc})"
            )

    @property
    def n_lines(self) -> int:
        """Total lines in the cache."""
        return self.capacity_cells // self.line_cells

    @property
    def n_sets(self) -> int:
        """Number of sets."""
        return max(1, self.n_lines // self.assoc)


@dataclass
class CacheStats:
    """Hit/miss counters of one simulation."""

    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        """Total line accesses."""
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        """``misses / accesses`` (0 for an empty trace)."""
        return self.misses / self.accesses if self.accesses else 0.0

    def time_estimate(self, t_hit: float = 1.0, t_miss: float = 8.0) -> float:
        """Simple two-level timing model: ``hits·t_hit + misses·t_miss``.

        Calibration: one access covers a *line* (default 8 DP cells) of
        arithmetic, so ``t_hit = 1`` represents ≈ 8 cells of DP work
        (~15–20 ns scalar).  A DRAM miss costs ~80–150 ns, hence the
        default ``t_miss = 8`` work-units — the ratio, not the absolute
        latency, is what decides the algorithm ordering.
        """
        return self.hits * t_hit + self.misses * t_miss


class CacheSim:
    """LRU set-associative cache over abstract cell addresses."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self._sets: List[OrderedDict] = [OrderedDict() for _ in range(config.n_sets)]
        self.stats = CacheStats()

    def reset(self) -> None:
        """Clear contents and counters."""
        for s in self._sets:
            s.clear()
        self.stats = CacheStats()

    def access_line(self, line: int) -> bool:
        """Touch one cache line; returns ``True`` on a hit."""
        cfg = self.config
        s = self._sets[line % cfg.n_sets]
        if line in s:
            s.move_to_end(line)
            self.stats.hits += 1
            return True
        s[line] = True
        if len(s) > cfg.assoc:
            s.popitem(last=False)
        self.stats.misses += 1
        return False

    def access_cell(self, addr: int) -> bool:
        """Touch the line containing cell ``addr``."""
        return self.access_line(addr // self.config.line_cells)

    def access_range(self, start: int, length: int) -> None:
        """Touch every line of the cell range ``[start, start + length)``.

        This is the workhorse for row sweeps: one call per row segment
        instead of one per cell.
        """
        if length <= 0:
            return
        lc = self.config.line_cells
        first = start // lc
        last = (start + length - 1) // lc
        for line in range(first, last + 1):
            self.access_line(line)

    def run(self, lines: Iterable[int]) -> CacheStats:
        """Process an iterable of line indices; returns the stats."""
        access = self.access_line
        for line in lines:
            access(line)
        return self.stats
