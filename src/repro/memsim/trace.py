"""Memory-access trace generators for the three algorithm families.

Each generator replays the *memory behaviour* of an algorithm on a virtual
DPM directly into a :class:`~repro.memsim.cache.CacheSim`, at row-segment
granularity.  The structural differences that matter for caching are:

* **Full matrix** — writes ``m·n`` *distinct* cells (the stored DPM), so
  once the matrix exceeds the cache every line is a compulsory miss;
  FindPath then walks back over long-evicted lines.
* **Hirschberg** — twice the accesses, but everything lands in two rolling
  row buffers that are endlessly reused: the working set is ``O(n)``.
* **FastLSA** — between 1× and 1.5× the accesses, into rolling rows plus
  the grid lines (written once, read once) and a single reused Base Case
  buffer — the paper's point that the tunable working set can be made
  cache-resident.

A stack allocator models real allocator behaviour: sibling sub-problems
reuse each other's freed memory, while a parent's grid stays live during
its children (matching FastLSA's actual lifetimes).

The FastLSA/Hirschberg recursions assume a near-diagonal optimal path
(homologous sequences), the typical case for the paper's workloads; the
trace cost model is unaffected by small path deviations.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from .cache import CacheSim

__all__ = ["StackAllocator", "trace_full_matrix", "trace_hirschberg", "trace_fastlsa"]


@dataclass
class StackAllocator:
    """Bump allocator with stack discipline (free restores the mark)."""

    top: int = 0

    def alloc(self, cells: int) -> int:
        """Reserve ``cells`` and return the base address."""
        base = self.top
        self.top += int(cells)
        return base

    def mark(self) -> int:
        """Current stack mark (pass to :meth:`release`)."""
        return self.top

    def release(self, mark: int) -> None:
        """Free everything allocated after ``mark``."""
        if mark > self.top:
            raise ConfigError("release above current stack top")
        self.top = mark


def _sweep_rows(sim: CacheSim, prev_base: int, cur_base: int, rows: int, width: int) -> None:
    """Rolling two-row sweep: each row reads the previous and writes the
    current buffer, swapping roles — the linear-space kernel's pattern."""
    for i in range(rows):
        if i % 2 == 0:
            sim.access_range(prev_base, width)
            sim.access_range(cur_base, width)
        else:
            sim.access_range(cur_base, width)
            sim.access_range(prev_base, width)


def _fm_region(sim: CacheSim, base: int, rows: int, width: int, with_path: bool) -> None:
    """Full-matrix FindScore (+ optional FindPath) over a dense region."""
    for i in range(1, rows + 1):
        sim.access_range(base + (i - 1) * width, width)
        sim.access_range(base + i * width, width)
    if with_path:
        # Walk an approximately diagonal path, reading the three candidate
        # predecessor cells at every step.
        i, j = rows, width - 1
        while i > 0 and j > 0:
            sim.access_cell(base + i * width + j)
            sim.access_cell(base + (i - 1) * width + j - 1)
            sim.access_cell(base + (i - 1) * width + j)
            sim.access_cell(base + i * width + j - 1)
            i -= 1
            j -= 1
        while i > 0:
            sim.access_cell(base + i * width)
            i -= 1
        while j > 0:
            sim.access_cell(base + j)
            j -= 1


def trace_full_matrix(sim: CacheSim, m: int, n: int) -> None:
    """Replay the FM algorithm: dense ``(m+1)·(n+1)`` matrix + traceback."""
    alloc = StackAllocator()
    base = alloc.alloc((m + 1) * (n + 1))
    _fm_region(sim, base, m, n + 1, with_path=True)


def trace_hirschberg(
    sim: CacheSim, m: int, n: int, base_cells: int = 4096, _alloc: StackAllocator | None = None
) -> None:
    """Replay Hirschberg: forward+backward sweeps, recurse on both halves."""
    alloc = _alloc or StackAllocator()
    if m <= 0 or n <= 0:
        return
    mark = alloc.mark()
    if (m + 1) * (n + 1) <= base_cells or m == 1:
        base = alloc.alloc((m + 1) * (n + 1))
        _fm_region(sim, base, m, n + 1, with_path=True)
        alloc.release(mark)
        return
    rows = alloc.alloc(2 * (n + 1))
    mid = m // 2
    _sweep_rows(sim, rows, rows + (n + 1), mid, n + 1)          # forward half
    _sweep_rows(sim, rows, rows + (n + 1), m - mid, n + 1)      # backward half
    sim.access_range(rows, 2 * (n + 1))                          # join scan
    alloc.release(mark)
    # Near-diagonal split assumption: the join lands mid-column.
    trace_hirschberg(sim, mid, n // 2, base_cells, alloc)
    trace_hirschberg(sim, m - mid, n - n // 2, base_cells, alloc)


def trace_fastlsa(
    sim: CacheSim,
    m: int,
    n: int,
    k: int,
    base_cells: int,
    _alloc: StackAllocator | None = None,
    _base_buffer: int | None = None,
) -> None:
    """Replay FastLSA: FillCache sweeps + grid lines + reused base buffer.

    The Base Case buffer is allocated once (the paper reserves ``BM`` up
    front) and reused by every base case, which is exactly why it can stay
    cache-resident.
    """
    if k < 2:
        raise ConfigError(f"k must be >= 2, got {k}")
    alloc = _alloc or StackAllocator()
    if _base_buffer is None:
        _base_buffer = alloc.alloc(base_cells)
    if m <= 0 or n <= 0:
        return
    if (m + 1) * (n + 1) <= base_cells or (m < k and n < k):
        _fm_region(sim, _base_buffer, m, n + 1, with_path=True)
        return
    mark = alloc.mark()
    bm, bn = max(1, m // k), max(1, n // k)
    rows = alloc.alloc(2 * (bn + 1))
    grid_rows = alloc.alloc((k - 1) * (n + 1))
    grid_cols = alloc.alloc((k - 1) * (m + 1))
    # FillCache: k² − 1 blocks, each a rolling sweep reading its boundary
    # lines and writing its bottom/right segments into the grid.
    for p in range(k):
        for q in range(k):
            if p == k - 1 and q == k - 1:
                continue
            if p > 0:
                sim.access_range(grid_rows + (p - 1) * (n + 1) + q * bn, bn + 1)
            if q > 0:
                sim.access_range(grid_cols + (q - 1) * (m + 1) + p * bm, bm + 1)
            _sweep_rows(sim, rows, rows + (bn + 1), bm, bn + 1)
            if p < k - 1:
                sim.access_range(grid_rows + p * (n + 1) + q * bn, bn + 1)
            if q < k - 1:
                sim.access_range(grid_cols + q * (m + 1) + p * bm, bm + 1)
    # Near-diagonal path: recurse through the k diagonal blocks.
    for _ in range(k):
        trace_fastlsa(sim, bm, bn, k, base_cells, alloc, _base_buffer)
    alloc.release(mark)
