"""Tests for repro.parallel.tiles."""

import pytest

from repro.core import Grid
from repro.core.fastlsa import initial_problem
from repro.errors import ConfigError
from repro.parallel import TileGrid, build_fill_tiles, default_uv, refine_bounds


class TestRefineBounds:
    def test_even(self):
        assert refine_bounds([0, 10, 20], 2) == [0, 5, 10, 15, 20]

    def test_identity_with_one_part(self):
        assert refine_bounds([0, 7, 19], 1) == [0, 7, 19]

    def test_short_segments_dedupe(self):
        out = refine_bounds([0, 2], 5)
        assert out[0] == 0 and out[-1] == 2
        assert out == sorted(set(out))

    def test_invalid_parts(self):
        with pytest.raises(ConfigError):
            refine_bounds([0, 10], 0)


class TestDefaultUv:
    def test_enough_tiles(self):
        for P in (1, 2, 4, 8, 16):
            for k in (2, 4, 6, 8):
                u, v = default_uv(P, k)
                assert (k * u) * (k * v) >= 4 * P * P

    def test_small_p_gives_one(self):
        assert default_uv(1, 8) == (1, 1)

    def test_invalid_p(self):
        with pytest.raises(ConfigError):
            default_uv(0, 4)


class TestTileGrid:
    def test_basic_structure(self):
        tg = TileGrid([0, 5, 10], [0, 4, 8, 12])
        assert tg.R == 2 and tg.C == 3
        assert len(tg) == 6
        t = tg[(1, 2)]
        assert (t.a0, t.b0, t.a1, t.b1) == (5, 8, 10, 12)
        assert t.cells == 5 * 4

    def test_dependencies(self):
        tg = TileGrid([0, 5, 10], [0, 5, 10])
        assert tg.dependencies((0, 0)) == []
        assert set(tg.dependencies((1, 1))) == {(0, 1), (1, 0)}

    def test_dependents(self):
        tg = TileGrid([0, 5, 10], [0, 5, 10])
        assert set(tg.dependents((0, 0))) == {(1, 0), (0, 1)}
        assert tg.dependents((1, 1)) == []

    def test_skip_excludes_tiles(self):
        tg = TileGrid([0, 5, 10], [0, 5, 10], skip={(1, 1)})
        assert len(tg) == 3
        assert (1, 1) not in tg
        assert tg.dependents((0, 1)) == []

    def test_wavefront_lines(self):
        tg = TileGrid([0, 5, 10], [0, 5, 10])
        lines = tg.wavefront_lines()
        assert [len(l) for l in lines] == [1, 2, 1]
        assert lines[0] == [(0, 0)]

    def test_wavefront_lines_with_skip(self):
        tg = TileGrid([0, 5, 10], [0, 5, 10], skip={(1, 1)})
        lines = tg.wavefront_lines()
        assert [len(l) for l in lines] == [1, 2]

    def test_total_cells(self):
        tg = TileGrid([0, 5, 10], [0, 4, 8])
        assert tg.total_cells() == 10 * 8

    def test_needs_at_least_one_tile(self):
        with pytest.raises(ConfigError):
            TileGrid([0], [0, 5])


class TestBuildFillTiles:
    def test_alignment_with_grid_lines(self, dna_scheme):
        grid = Grid(initial_problem(40, 40, dna_scheme), 4, affine=False)
        tg = build_fill_tiles(grid, 2, 2)
        # Every grid bound must appear among tile bounds.
        for b in grid.row_bounds:
            assert b in tg.row_bounds
        for b in grid.col_bounds:
            assert b in tg.col_bounds
        assert tg.R == 8 and tg.C == 8

    def test_bottom_right_block_skipped(self, dna_scheme):
        grid = Grid(initial_problem(40, 40, dna_scheme), 4, affine=False)
        tg = build_fill_tiles(grid, 2, 2)
        # 2x2 tiles of the last block are skipped.
        assert len(tg) == 64 - 4
        assert (7, 7) not in tg and (6, 6) not in tg
        assert (6, 5) in tg

    def test_no_skip_variant(self, dna_scheme):
        grid = Grid(initial_problem(40, 40, dna_scheme), 4, affine=False)
        tg = build_fill_tiles(grid, 2, 2, skip_bottom_right=False)
        assert len(tg) == 64

    def test_total_cells_match_region(self, dna_scheme):
        grid = Grid(initial_problem(37, 53, dna_scheme), 3, affine=False)
        tg = build_fill_tiles(grid, 2, 3, skip_bottom_right=False)
        assert tg.total_cells() == 37 * 53
