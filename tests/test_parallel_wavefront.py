"""Tests for the three-phase wavefront decomposition."""

from repro.parallel import TileGrid, three_phases, wavefront_stage_schedule

def uniform_grid(R, C, skip=None):
    return TileGrid(list(range(0, R + 1)), list(range(0, C + 1)), skip=skip)


class TestThreePhases:
    def test_tile_conservation(self):
        tg = uniform_grid(6, 9)
        ph = three_phases(tg, 4)
        assert ph.total_tiles == len(tg)

    def test_ramp_up_matches_paper_formula(self):
        # For a large square grid, ramp-up has P-1 lines of 1..P-1 tiles:
        # P(P-1)/2 tiles total (Section 5.1).
        P = 5
        tg = uniform_grid(12, 12)
        ph = three_phases(tg, P)
        assert ph.ramp_up_stages == P - 1
        assert ph.ramp_up_tiles == P * (P - 1) // 2

    def test_steady_tiles_lower_bound(self):
        # Eq. 29: steady phase computes at least R*C - P^2 + P tiles.
        P, R, C = 4, 10, 10
        ph = three_phases(uniform_grid(R, C), P)
        assert ph.steady_tiles >= R * C - P * P + P

    def test_no_steady_state_for_huge_p(self):
        ph = three_phases(uniform_grid(3, 3), 100)
        assert ph.steady_stages == 0
        assert ph.total_tiles == 9

    def test_p1_all_steady(self):
        ph = three_phases(uniform_grid(4, 4), 1)
        assert ph.ramp_up_stages == 0
        assert ph.ramp_down_stages == 0
        assert ph.steady_tiles == 16

    def test_skip_creates_noncontiguous_ramp_down(self):
        # Figure 13: ramp-down lines may be non-contiguous because the
        # bottom-right block is skipped.
        skip = {(r, c) for r in (4, 5) for c in (4, 5)}
        tg = TileGrid(list(range(7)), list(range(7)), skip=skip)
        ph = three_phases(tg, 3)
        assert ph.total_tiles == 36 - 4


class TestStageSchedule:
    def test_matches_line_rounds(self):
        tg = uniform_grid(3, 3)
        makespan, per_line = wavefront_stage_schedule(tg, 2, cost=lambda t: 1.0)
        # Lines: 1,2,3,2,1 tiles -> rounds 1,1,2,1,1 at unit cost.
        assert per_line == [1.0, 1.0, 2.0, 1.0, 1.0]
        assert makespan == 6.0

    def test_upper_bounds_list_schedule(self):
        # The stage-synchronous schedule (the paper's bound) can never beat
        # the greedy list schedule.
        from repro.parallel import list_schedule

        tg = uniform_grid(8, 8)
        for P in (1, 2, 4, 8):
            stage, _ = wavefront_stage_schedule(tg, P, cost=lambda t: 1.0)
            greedy, _ = list_schedule(tg, P, lambda t: 1.0)
            assert stage >= greedy - 1e-9
