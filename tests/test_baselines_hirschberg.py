"""Tests for the Hirschberg linear-space baseline."""

import pytest

from repro.align import check_alignment
from repro.baselines import hirschberg, needleman_wunsch
from repro.errors import ConfigError
from repro.kernels import KernelInstruments
from tests.conftest import random_dna


class TestCorrectness:
    def test_paper_example(self, table1_scheme):
        al = hirschberg("TDVLKAD", "TLDKLLKD", table1_scheme)
        assert al.score == 82
        assert check_alignment(al, table1_scheme)[0]

    @pytest.mark.parametrize("base_cells", [4, 16, 64, 1024])
    def test_matches_nw_scores(self, rng, dna_scheme, base_cells):
        for _ in range(10):
            a = random_dna(rng, int(rng.integers(0, 60)))
            b = random_dna(rng, int(rng.integers(0, 60)))
            h = hirschberg(a, b, dna_scheme, base_cells=base_cells)
            n = needleman_wunsch(a, b, dna_scheme)
            assert h.score == n.score, (a, b)
            assert check_alignment(h, dna_scheme)[0]

    def test_empty_inputs(self, dna_scheme):
        assert hirschberg("", "", dna_scheme).score == 0
        assert hirschberg("ACG", "", dna_scheme).score == -18
        assert hirschberg("", "ACG", dna_scheme).score == -18

    def test_single_row(self, dna_scheme):
        al = hirschberg("A", "ACGT", dna_scheme)
        assert al.score == needleman_wunsch("A", "ACGT", dna_scheme).score


class TestRestrictions:
    def test_affine_dispatches_to_myers_miller(self, affine_scheme):
        al = hirschberg("ARNDAR", "ANDAR", affine_scheme)
        assert al.algorithm == "myers-miller"
        assert al.score == needleman_wunsch("ARNDAR", "ANDAR", affine_scheme).score

    def test_tiny_base_cells_rejected(self, dna_scheme):
        with pytest.raises(ConfigError):
            hirschberg("AC", "AC", dna_scheme, base_cells=2)


class TestComplexity:
    def test_roughly_double_operations(self, rng, dna_scheme):
        """The paper: 'the number of operations approximately doubles'."""
        n = 300
        a, b = random_dna(rng, n), random_dna(rng, n)
        al = hirschberg(a, b, dna_scheme, base_cells=64)
        ratio = al.stats.cells_computed / (n * n)
        assert 1.8 <= ratio <= 2.3  # the paper's ~2x figure

    def test_linear_space(self, rng, dna_scheme):
        n = 400
        a, b = random_dna(rng, n), random_dna(rng, n)
        al = hirschberg(a, b, dna_scheme, base_cells=256)
        # Peak must be O(m + n), far below the n^2 dense matrix.
        assert al.stats.peak_cells_resident < 20 * (2 * n)
        assert al.stats.peak_cells_resident < (n * n) / 50

    def test_instruments_shared(self, dna_scheme):
        inst = KernelInstruments()
        hirschberg("ACGTACGT", "ACGTACGT", dna_scheme, instruments=inst)
        assert inst.ops.cells > 0
