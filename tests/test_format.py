"""Tests for repro.align.format."""

import numpy as np
import pytest

from repro.align import AlignmentPath, alignment_from_path, format_alignment, format_dpm
from repro.baselines import needleman_wunsch


class TestFormatAlignment:
    def test_match_markers(self, dna_scheme):
        al = alignment_from_path(
            "ACG", "ACG", AlignmentPath([(0, 0), (1, 1), (2, 2), (3, 3)]), 15
        )
        out = format_alignment(al)
        lines = out.split("\n")
        assert lines[1] == "ACG"
        assert lines[2] == "ACG"
        assert lines[3] == "***"

    def test_similar_marker_with_scheme(self, table1_scheme):
        al = needleman_wunsch("TDVLKAD", "TLDKLLKD", table1_scheme)
        out = format_alignment(al, scheme=table1_scheme)
        # L/V scores 12 > 0 under Table 1 -> '+'.
        assert "+" in out

    def test_wrapping(self, dna_scheme):
        n = 150
        al = alignment_from_path(
            "A" * n, "A" * n,
            AlignmentPath([(i, i) for i in range(n + 1)]), 5 * n,
        )
        out = format_alignment(al, width=60, show_header=False)
        blocks = out.split("\n\n")
        assert len(blocks) == 3  # 60 + 60 + 30

    def test_header_contents(self, dna_scheme):
        al = alignment_from_path(
            "AC", "AC", AlignmentPath([(0, 0), (1, 1), (2, 2)]), 10
        )
        al.algorithm = "test-algo"
        out = format_alignment(al)
        assert "score=10" in out and "test-algo" in out


class TestFormatDpm:
    def test_paper_figure1(self, table1_scheme):
        al = needleman_wunsch("TDVLKAD", "TLDKLLKD", table1_scheme)
        from repro.baselines import nw_score_matrix

        mats = nw_score_matrix("TDVLKAD", "TLDKLLKD", table1_scheme)
        out = format_dpm(mats.H, "TDVLKAD", "TLDKLLKD", path=al.path)
        assert "82*" in out  # bottom-right optimal entry, on the path
        assert "-80" in out  # top-right boundary value

    def test_label_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_dpm(np.zeros((3, 3), dtype=np.int64), "AB", "ABC")
