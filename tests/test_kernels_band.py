"""Direct unit tests for the band-sweep kernels (column sampling)."""

import numpy as np
import pytest

from repro.kernels import boundary_vectors
from repro.kernels.affine import affine_boundaries, sweep_band_affine
from repro.kernels.linear import sweep_band
from repro.kernels.reference import ref_matrix_affine, ref_matrix_linear
from tests.conftest import random_dna


class TestSweepBandLinear:
    def test_samples_match_dense(self, rng, dna_scheme):
        table = dna_scheme.matrix.table
        for _ in range(20):
            M, N = int(rng.integers(1, 20)), int(rng.integers(1, 20))
            a = dna_scheme.encode(random_dna(rng, M))
            b = dna_scheme.encode(random_dna(rng, N))
            fr, fc = boundary_vectors(M, N, -6)
            H = ref_matrix_linear(a, b, table, -6)
            n_samples = int(rng.integers(0, min(N, 5) + 1))
            cols = np.sort(rng.choice(N + 1, n_samples, replace=False))
            last_row, samples = sweep_band(a, b, table, -6, fr, fc, cols)
            assert np.array_equal(last_row, H[-1])
            for t, c in enumerate(cols):
                assert np.array_equal(samples[t], H[:, c]), f"col {c}"

    def test_no_samples(self, rng, dna_scheme):
        a = dna_scheme.encode(random_dna(rng, 8))
        b = dna_scheme.encode(random_dna(rng, 9))
        fr, fc = boundary_vectors(8, 9, -6)
        last_row, samples = sweep_band(
            a, b, dna_scheme.matrix.table, -6, fr, fc, np.empty(0, dtype=np.int64)
        )
        assert samples.shape == (0, 9)
        H = ref_matrix_linear(a, b, dna_scheme.matrix.table, -6)
        assert np.array_equal(last_row, H[-1])

    def test_sample_out_of_range_rejected(self, dna_scheme):
        a = dna_scheme.encode("AC")
        b = dna_scheme.encode("AC")
        fr, fc = boundary_vectors(2, 2, -6)
        with pytest.raises(ValueError):
            sweep_band(a, b, dna_scheme.matrix.table, -6, fr, fc, np.array([5]))

    def test_degenerate_m0(self, dna_scheme):
        b = dna_scheme.encode("ACG")
        fr, fc = boundary_vectors(0, 3, -6)
        last_row, samples = sweep_band(
            np.empty(0, np.int16), b, dna_scheme.matrix.table, -6, fr, fc, np.array([1])
        )
        assert np.array_equal(last_row, fr)
        assert samples[0, 0] == fr[1]

    def test_degenerate_n0(self, dna_scheme):
        a = dna_scheme.encode("ACG")
        fr, fc = boundary_vectors(3, 0, -6)
        last_row, samples = sweep_band(
            a, np.empty(0, np.int16), dna_scheme.matrix.table, -6, fr, fc, np.array([0])
        )
        assert np.array_equal(samples[0], fc)

    def test_counter(self, dna_scheme):
        from repro.kernels import OpCounter

        a = dna_scheme.encode("ACGT")
        b = dna_scheme.encode("ACG")
        fr, fc = boundary_vectors(4, 3, -6)
        c = OpCounter()
        sweep_band(a, b, dna_scheme.matrix.table, -6, fr, fc,
                   np.empty(0, np.int64), counter=c)
        assert c.cells == 12


class TestSweepBandAffine:
    def test_samples_match_dense(self, rng, affine_dna_scheme):
        scheme = affine_dna_scheme
        table = scheme.matrix.table
        o, e = scheme.gap_open, scheme.gap_extend
        for _ in range(15):
            M, N = int(rng.integers(1, 16)), int(rng.integers(2, 16))
            a = scheme.encode(random_dna(rng, M))
            b = scheme.encode(random_dna(rng, N))
            rh, rf, ch, ce = affine_boundaries(M, N, o, e)
            H, E, F = ref_matrix_affine(a, b, table, o, e)
            n_samples = int(rng.integers(1, min(N - 1, 4) + 1))
            cols = np.sort(rng.choice(np.arange(1, N + 1), n_samples, replace=False))
            lr_h, lr_f, s_h, s_e = sweep_band_affine(
                a, b, table, o, e, rh, rf, ch, ce, cols
            )
            assert np.array_equal(lr_h, H[-1])
            assert np.array_equal(lr_f[1:], F[-1, 1:])
            for t, c in enumerate(cols):
                assert np.array_equal(s_h[t], H[:, c]), f"H col {c}"
                assert np.array_equal(s_e[t][1:], E[1:, c]), f"E col {c}"

    def test_sample_zero_rejected(self, affine_dna_scheme):
        scheme = affine_dna_scheme
        a = scheme.encode("AC")
        rh, rf, ch, ce = affine_boundaries(2, 2, scheme.gap_open, scheme.gap_extend)
        with pytest.raises(ValueError, match="interior"):
            sweep_band_affine(
                a, a, scheme.matrix.table, scheme.gap_open, scheme.gap_extend,
                rh, rf, ch, ce, np.array([0]),
            )
