"""Smoke tests: the example scripts must run end-to-end.

Each example self-asserts its claims internally (scores, budgets,
placements), so a clean exit is a meaningful check.  The heavyweight
genome example runs in its FAST mode.
"""

import os
import subprocess
import sys

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

def run_example(name, env_extra=None, timeout=240):
    env = dict(os.environ)
    env.update(env_extra or {})
    proc = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, name)],
        capture_output=True,
        text=True,
        timeout=timeout,
        env=env,
    )
    assert proc.returncode == 0, f"{name} failed:\n{proc.stdout}\n{proc.stderr}"
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "score=82" in out

    def test_protein_homology(self):
        out = run_example("protein_homology.py")
        assert "Best local alignment" in out

    def test_multiple_alignment(self):
        out = run_example("multiple_alignment.py")
        assert "Multiple alignment" in out
        assert "conserved columns" in out

    def test_parallel_speedup(self):
        out = run_example("parallel_speedup.py")
        assert "identical to sequential" in out
        assert "Theorem 4" in out

    def test_memory_tuning(self):
        out = run_example("memory_tuning.py")
        assert "Adaptive space/time trade-off" in out

    def test_read_mapping(self):
        out = run_example("read_mapping.py")
        assert "dovetail overlaps detected" in out

    def test_genome_alignment_fast(self):
        out = run_example("genome_alignment.py", env_extra={"FAST": "1"}, timeout=400)
        assert "within budget     : True" in out

    def test_service_throughput(self):
        out = run_example("service_throughput.py")
        assert "over-budget job rejected as expected" in out
        assert "requests in" in out
