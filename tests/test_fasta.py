"""Tests for repro.align.fasta."""

import io

import pytest

from repro.align import Sequence, format_fasta, parse_fasta, read_fasta, write_fasta
from repro.errors import FastaError


SAMPLE = """>seq1 first sequence
ACGTACGT
ACGT
>seq2
TTTT

>seq3 trailing description here
"""


class TestParse:
    def test_multi_record(self):
        recs = list(parse_fasta(io.StringIO(SAMPLE)))
        assert [r.name for r in recs] == ["seq1", "seq2", "seq3"]
        assert recs[0].text == "ACGTACGTACGT"
        assert recs[0].description == "first sequence"
        assert recs[1].text == "TTTT"
        assert recs[2].text == ""

    def test_data_before_header_rejected(self):
        with pytest.raises(FastaError):
            list(parse_fasta(io.StringIO("ACGT\n>x\n")))

    def test_empty_header_rejected(self):
        with pytest.raises(FastaError):
            list(parse_fasta(io.StringIO(">\nACGT\n")))

    def test_empty_stream(self):
        assert list(parse_fasta(io.StringIO(""))) == []

    def test_internal_whitespace_rejected(self):
        with pytest.raises(FastaError):
            list(parse_fasta(io.StringIO(">x\nAC GT\n")))


class TestFormat:
    def test_wrapping(self):
        text = format_fasta([Sequence("A" * 150, name="x")], width=70)
        lines = text.strip().split("\n")
        assert lines[0] == ">x"
        assert len(lines[1]) == 70
        assert len(lines[2]) == 70
        assert len(lines[3]) == 10

    def test_description_in_header(self):
        text = format_fasta([Sequence("A", name="x", description="desc here")])
        assert text.startswith(">x desc here\n")

    def test_bad_width(self):
        with pytest.raises(FastaError):
            format_fasta([Sequence("A", name="x")], width=0)


class TestRoundtrip:
    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "test.fasta"
        records = [
            Sequence("ACGTACGT" * 20, name="alpha", description="first"),
            Sequence("TTTTAAAA", name="beta"),
        ]
        write_fasta(path, records)
        loaded = read_fasta(path)
        assert len(loaded) == 2
        assert loaded[0].text == records[0].text
        assert loaded[0].name == "alpha"
        assert loaded[1].text == records[1].text

    def test_read_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.fasta"
        path.write_text("")
        with pytest.raises(FastaError):
            read_fasta(path)
