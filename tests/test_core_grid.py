"""Tests for repro.core.grid and repro.core.problem."""

import numpy as np
import pytest

from repro.core import Grid, Problem, RowCache, ColCache, split_bounds
from repro.core.fastlsa import initial_problem
from repro.errors import ConfigError
from repro.kernels import MemoryMeter


class TestSplitBounds:
    def test_even_split(self):
        assert split_bounds(0, 100, 4) == [0, 25, 50, 75, 100]

    def test_offset(self):
        assert split_bounds(10, 20, 2) == [10, 15, 20]

    def test_degenerate_short_span(self):
        # Span shorter than k: bounds deduplicate but keep ends.
        bounds = split_bounds(0, 2, 8)
        assert bounds[0] == 0 and bounds[-1] == 2
        assert bounds == sorted(set(bounds))

    def test_empty_span(self):
        assert split_bounds(5, 5, 4) == [5]

    def test_invalid_span(self):
        with pytest.raises(ConfigError):
            split_bounds(5, 3, 2)

    def test_segments_nonempty(self):
        for span in (1, 2, 3, 7, 100):
            bounds = split_bounds(0, span, 5)
            assert all(b1 > b0 for b0, b1 in zip(bounds, bounds[1:]))


class TestProblem:
    def test_shape(self, dna_scheme):
        p = initial_problem(10, 20, dna_scheme)
        assert p.nrows == 10 and p.ncols == 20
        assert p.dense_cells == 11 * 21

    def test_cache_length_checked(self):
        with pytest.raises(ConfigError):
            Problem(0, 0, 2, 2, RowCache(h=np.zeros(2)), ColCache(h=np.zeros(3)))

    def test_corner_agreement_checked(self):
        row = RowCache(h=np.array([0, 1, 2]))
        col = ColCache(h=np.array([5, 1, 2]))
        with pytest.raises(ConfigError, match="corner"):
            Problem(0, 0, 2, 2, row, col)

    def test_cache_segment(self):
        rc = RowCache(h=np.arange(10))
        seg = rc.segment(2, 5)
        assert list(seg.h) == [2, 3, 4, 5]

    def test_affine_cache_length_mismatch(self):
        with pytest.raises(ConfigError):
            RowCache(h=np.zeros(3), f=np.zeros(4))


class TestGrid:
    def make_grid(self, dna_scheme, m=40, n=40, k=4, meter=None):
        return Grid(initial_problem(m, n, dna_scheme), k, affine=False, meter=meter)

    def test_block_structure(self, dna_scheme):
        g = self.make_grid(dna_scheme)
        assert g.n_block_rows == 4 and g.n_block_cols == 4
        a0, b0, a1, b1 = g.block_extent(0, 0)
        assert (a0, b0) == (0, 0) and (a1, b1) == (10, 10)
        a0, b0, a1, b1 = g.block_extent(3, 3)
        assert (a1, b1) == (40, 40)

    def test_boundary_lines_serve_input_caches(self, dna_scheme):
        g = self.make_grid(dna_scheme)
        line = g.row_line(0, 0, 40)
        assert list(line.h) == list(range(0, -246, -6))

    def test_store_and_read_row_segment(self, dna_scheme):
        g = self.make_grid(dna_scheme)
        seg = np.arange(11, dtype=np.int64)
        g.store_row_segment(1, 10, seg, None)
        back = g.row_line(1, 10, 20)
        assert list(back.h) == list(seg)

    def test_memory_metering(self, dna_scheme):
        meter = MemoryMeter()
        g = self.make_grid(dna_scheme, meter=meter)
        expected = 3 * 41 * 2  # (k-1) rows of 41 + (k-1) cols of 41
        assert meter.current == expected
        g.free()
        assert meter.current == 0

    def test_double_free_is_safe(self, dna_scheme):
        meter = MemoryMeter()
        g = self.make_grid(dna_scheme, meter=meter)
        g.free()
        g.free()
        assert meter.current == 0

    def test_affine_doubles_line_storage(self, dna_scheme, affine_dna_scheme):
        meter_l = MemoryMeter()
        Grid(initial_problem(40, 40, dna_scheme), 4, affine=False, meter=meter_l)
        meter_a = MemoryMeter()
        Grid(initial_problem(40, 40, affine_dna_scheme), 4, affine=True, meter=meter_a)
        assert meter_a.peak == 2 * meter_l.peak

    def test_up_left_bounds_on_grid_line(self, dna_scheme):
        g = self.make_grid(dna_scheme)
        # Head exactly on grid row 20, inside column block 2.
        p, a0, q, b0 = g.up_left_bounds(20, 25)
        assert a0 == 10  # previous grid row (strictly above)
        assert b0 == 20

    def test_up_left_bounds_interior(self, dna_scheme):
        g = self.make_grid(dna_scheme)
        p, a0, q, b0 = g.up_left_bounds(25, 20)
        assert a0 == 20 and b0 == 10

    def test_up_left_on_boundary_rejected(self, dna_scheme):
        g = self.make_grid(dna_scheme)
        with pytest.raises(ConfigError):
            g.up_left_bounds(0, 10)

    def test_degenerate_dimension(self, dna_scheme):
        g = Grid(initial_problem(1, 40, dna_scheme), 4, affine=False)
        assert g.n_block_rows == 1
        assert g.n_block_cols == 4
