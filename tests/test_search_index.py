"""Tests for the persisted corpus index: roundtrip, integrity, caching.

The failure-mode matrix matters more than the happy path here: a rotten
index must surface as a typed error at load time, never as a plausible
but wrong search corpus."""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro import AlphabetError, ConfigError, write_fasta
from repro.align import Sequence
from repro.errors import CorruptIndexError, IndexFormatError
from repro.search import CorpusIndex, load_index
from repro.search.index import INDEX_MAGIC, INDEX_VERSION

RECORDS = [
    Sequence("ACGTACGTAC", name="s0", description="first"),
    Sequence("TTTT", name="s1"),
    Sequence("GATTACA", name="s2", description="movie"),
]


@pytest.fixture
def index():
    return CorpusIndex.build(RECORDS, "ACGT")


@pytest.fixture
def index_path(index, tmp_path):
    path = tmp_path / "corpus.flsa"
    index.save(path)
    return path


class TestBuild:
    def test_roundtrips_sequences(self, index):
        assert len(index) == 3
        for i, rec in enumerate(RECORDS):
            got = index.sequence(i)
            assert (got.text, got.name, got.description) == (
                rec.text, rec.name, rec.description
            )

    def test_codes_for_is_a_view(self, index):
        view = index.codes_for(1)
        assert view.base is index.codes
        assert view.tolist() == [3, 3, 3, 3]  # TTTT over ACGT

    def test_histograms_count_composition(self, index):
        assert index.histograms.shape == (3, 4)
        assert index.histograms.sum(axis=1).tolist() == index.lengths.tolist()
        assert index.histograms[1].tolist() == [0, 0, 0, 4]

    def test_from_fasta(self, tmp_path):
        fa = tmp_path / "corpus.fasta"
        write_fasta(fa, RECORDS)
        index = CorpusIndex.from_fasta(fa, "ACGT")
        assert index.names == ["s0", "s1", "s2"]
        assert index.sequence(2).text == "GATTACA"

    def test_unknown_symbol_is_alphabet_error(self):
        with pytest.raises(AlphabetError, match="'X'"):
            CorpusIndex.build(["ACXT"], "ACGT")

    def test_bad_alphabets_rejected(self):
        with pytest.raises(ConfigError):
            CorpusIndex.build(["A"], "")
        with pytest.raises(ConfigError):
            CorpusIndex.build(["A"], "AAC")

    def test_metadata_payload_mismatch_is_corrupt(self):
        with pytest.raises(CorruptIndexError, match="promises"):
            CorpusIndex("ACGT", ["s"], [""], np.array([5]),
                        np.zeros(3, dtype=np.uint8))

    def test_out_of_alphabet_code_is_corrupt(self):
        with pytest.raises(CorruptIndexError, match="outside"):
            CorpusIndex("ACGT", ["s"], [""], np.array([1]),
                        np.array([9], dtype=np.uint8))

    def test_empty_corpus(self, tmp_path):
        index = CorpusIndex.build([], "ACGT")
        assert len(index) == 0 and index.stats()["residues"] == 0
        path = tmp_path / "empty.flsa"
        index.save(path)
        assert len(CorpusIndex.load(path)) == 0


class TestPersistence:
    def test_save_load_roundtrip(self, index, index_path):
        loaded = CorpusIndex.load(index_path)
        assert loaded.alphabet == index.alphabet
        assert loaded.names == index.names
        assert loaded.descriptions == index.descriptions
        assert loaded.lengths.tolist() == index.lengths.tolist()
        assert loaded.codes.tolist() == index.codes.tolist()
        assert loaded.fingerprint() == index.fingerprint()

    def test_save_returns_fingerprint(self, index, tmp_path):
        assert index.save(tmp_path / "x.flsa") == index.fingerprint()

    def test_stats_shape(self, index):
        stats = index.stats()
        assert stats["sequences"] == 3 and stats["residues"] == 21
        assert stats["min_length"] == 4 and stats["max_length"] == 10
        assert len(stats["fingerprint"]) == 64


class TestCorruption:
    """Every byte-level failure mode maps to a typed error."""

    def _blob(self, index_path):
        return index_path.read_bytes()

    def test_bad_magic(self, index_path):
        index_path.write_bytes(b"X" + self._blob(index_path)[1:])
        with pytest.raises(IndexFormatError, match="not a"):
            CorpusIndex.load(index_path)

    def test_unsupported_version(self, index_path):
        blob = self._blob(index_path)
        rewritten = blob.replace(
            f"{INDEX_MAGIC} {INDEX_VERSION}\n".encode(),
            f"{INDEX_MAGIC} {INDEX_VERSION + 8}\n".encode(), 1
        )
        index_path.write_bytes(rewritten)
        with pytest.raises(IndexFormatError, match="version"):
            CorpusIndex.load(index_path)

    def test_malformed_magic_line(self, index_path):
        index_path.write_bytes(f"{INDEX_MAGIC} one\nrest".encode())
        with pytest.raises(IndexFormatError, match="malformed"):
            CorpusIndex.load(index_path)

    def test_unparseable_header(self, index_path):
        index_path.write_bytes(f"{INDEX_MAGIC} {INDEX_VERSION}\n".encode()
                               + b"{not json\n" + b"\x00\x01")
        with pytest.raises(IndexFormatError, match="unparseable"):
            CorpusIndex.load(index_path)

    def test_header_missing_key(self, index_path):
        header = json.dumps({"alphabet": "ACGT", "fingerprint": ""})
        index_path.write_bytes(f"{INDEX_MAGIC} {INDEX_VERSION}\n".encode()
                               + header.encode() + b"\n")
        with pytest.raises(IndexFormatError, match="missing"):
            CorpusIndex.load(index_path)

    def test_truncated_file_no_header(self, index_path):
        index_path.write_bytes(f"{INDEX_MAGIC} {INDEX_VERSION}\n".encode())
        with pytest.raises(IndexFormatError, match="truncated"):
            CorpusIndex.load(index_path)

    def test_truncated_payload(self, index_path):
        index_path.write_bytes(self._blob(index_path)[:-1])
        with pytest.raises(CorruptIndexError, match="truncated or padded"):
            CorpusIndex.load(index_path)

    def test_payload_bitrot_fails_fingerprint(self, index_path):
        blob = bytearray(self._blob(index_path))
        blob[-3] ^= 0xFF  # flip one residue byte
        index_path.write_bytes(bytes(blob))
        with pytest.raises(CorruptIndexError, match="fingerprint"):
            CorpusIndex.load(index_path)

    def test_metadata_bitrot_fails_fingerprint(self, index_path):
        blob = self._blob(index_path)
        head, header, payload = blob.split(b"\n", 2)
        assert b'"s1"' in header
        rotten = head + b"\n" + header.replace(b'"s1"', b'"z1"', 1) + b"\n" + payload
        index_path.write_bytes(rotten)
        with pytest.raises(CorruptIndexError, match="fingerprint"):
            CorpusIndex.load(index_path)


class TestLoadCache:
    def test_cache_hit_returns_same_object(self, index_path):
        cache = {}
        first = load_index(index_path, cache)
        assert load_index(index_path, cache) is first

    def test_mtime_bump_reloads(self, index_path):
        cache = {}
        first = load_index(index_path, cache)
        st = os.stat(index_path)
        os.utime(index_path, ns=(st.st_atime_ns, st.st_mtime_ns + 1_000_000))
        second = load_index(index_path, cache)
        assert second is not first
        assert second.fingerprint() == first.fingerprint()

    def test_no_cache_loads_fresh(self, index_path):
        assert load_index(index_path) is not load_index(index_path)
