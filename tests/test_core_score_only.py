"""Tests for the score-only API and fill-formulation equivalence."""

import numpy as np
import pytest

from repro.baselines import needleman_wunsch
from repro.core import Grid, align_score, fill_grid
from repro.core.fastlsa import initial_problem
from repro.core.fillcache import fill_grid_blocks
from repro.kernels import KernelInstruments
from tests.conftest import random_dna, random_protein


class TestAlignScore:
    def test_matches_nw_linear(self, rng, dna_scheme):
        for _ in range(15):
            a = random_dna(rng, int(rng.integers(0, 60)))
            b = random_dna(rng, int(rng.integers(0, 60)))
            assert align_score(a, b, dna_scheme) == needleman_wunsch(a, b, dna_scheme).score

    def test_matches_nw_affine(self, rng, affine_scheme):
        for _ in range(10):
            a = random_protein(rng, int(rng.integers(0, 40)))
            b = random_protein(rng, int(rng.integers(0, 40)))
            assert align_score(a, b, affine_scheme) == needleman_wunsch(a, b, affine_scheme).score

    def test_linear_memory(self, rng, dna_scheme):
        inst = KernelInstruments()
        a, b = random_dna(rng, 400), random_dna(rng, 400)
        align_score(a, b, dna_scheme, instruments=inst)
        assert inst.ops.cells == 400 * 400

    def test_empty(self, dna_scheme):
        assert align_score("", "", dna_scheme) == 0
        assert align_score("ACG", "", dna_scheme) == -18


class TestFillFormulations:
    """Band sweeps and the literal block walk must agree exactly."""

    @pytest.mark.parametrize("k", [2, 3, 5, 9])
    def test_linear_equivalence(self, rng, dna_scheme, k):
        m, n = 47, 61
        a, b = random_dna(rng, m), random_dna(rng, n)
        ac, bc = dna_scheme.encode(a), dna_scheme.encode(b)
        g_band = Grid(initial_problem(m, n, dna_scheme), k, affine=False)
        g_block = Grid(initial_problem(m, n, dna_scheme), k, affine=False)
        fill_grid(g_band, ac, bc, dna_scheme)
        fill_grid_blocks(g_block, ac, bc, dna_scheme)
        for p in range(1, len(g_band.row_bounds) - 1):
            assert np.array_equal(g_band.row_line(p, 0, n).h, g_block.row_line(p, 0, n).h)
        for q in range(1, len(g_band.col_bounds) - 1):
            assert np.array_equal(g_band.col_line(q, 0, m).h, g_block.col_line(q, 0, m).h)

    @pytest.mark.parametrize("k", [2, 4])
    def test_affine_equivalence(self, rng, affine_dna_scheme, k):
        scheme = affine_dna_scheme
        m, n = 39, 53
        a, b = random_dna(rng, m), random_dna(rng, n)
        ac, bc = scheme.encode(a), scheme.encode(b)
        g_band = Grid(initial_problem(m, n, scheme), k, affine=True)
        g_block = Grid(initial_problem(m, n, scheme), k, affine=True)
        fill_grid(g_band, ac, bc, scheme)
        fill_grid_blocks(g_block, ac, bc, scheme)
        for p in range(1, len(g_band.row_bounds) - 1):
            lb, lk = g_band.row_line(p, 0, n), g_block.row_line(p, 0, n)
            assert np.array_equal(lb.h, lk.h)
            assert np.array_equal(lb.f[1:], lk.f[1:])
        for q in range(1, len(g_band.col_bounds) - 1):
            lb, lk = g_band.col_line(q, 0, m), g_block.col_line(q, 0, m)
            assert np.array_equal(lb.h, lk.h)
            assert np.array_equal(lb.e[1:], lk.e[1:])

    def test_same_operation_counts(self, rng, dna_scheme):
        from repro.kernels import OpCounter

        m = n = 60
        a, b = random_dna(rng, m), random_dna(rng, n)
        ac, bc = dna_scheme.encode(a), dna_scheme.encode(b)
        c1, c2 = OpCounter(), OpCounter()
        fill_grid(Grid(initial_problem(m, n, dna_scheme), 4, affine=False),
                  ac, bc, dna_scheme, counter=c1)
        fill_grid_blocks(Grid(initial_problem(m, n, dna_scheme), 4, affine=False),
                         ac, bc, dna_scheme, counter=c2)
        assert c1.cells == c2.cells
