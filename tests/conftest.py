"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.scoring import (
    ScoringScheme,
    affine_gap,
    blosum62,
    dna_simple,
    linear_gap,
    paper_scheme,
)


@pytest.fixture(autouse=True)
def _isolated_calibration_cache(tmp_path, monkeypatch):
    """Point the tune cache at an empty per-test directory.

    The developer's real ``~/.cache/fastlsa/calibration.json`` (if they
    ever ran ``fastlsa calibrate``) must not leak into tests: the service
    defaults to ``tune="auto"``, so a cached profile would silently
    change backend decisions suite-wide.  The load memo is keyed by
    path, so no explicit reset is needed.
    """
    from repro.tune import profile as tune_profile

    monkeypatch.setenv(tune_profile.CACHE_DIR_ENV, str(tmp_path / "tune-cache"))
    # Each test gets a fresh shot at the warn-once "no profile" notice.
    monkeypatch.setattr(tune_profile, "_WARNED_NO_PROFILE", False)


@pytest.fixture(autouse=True)
def _no_shm_leaks():
    """Every test must drain its shared-memory arenas.

    The process backend's arenas are OS-level named segments: a leak
    outlives the interpreter.  Creation is registry-tracked, so an empty
    registry after each test proves every exit path destroyed its arena.
    """
    from repro.parallel.shm import active_arenas

    before = active_arenas()
    yield
    leaked = active_arenas() - before
    assert leaked == set(), f"leaked shared-memory arenas: {sorted(leaked)}"


@pytest.fixture(scope="session", autouse=True)
def _drain_worker_pools():
    """Tear down the shared wavefront pools once the suite finishes."""
    yield
    from repro.parallel import shutdown_pools

    shutdown_pools()


@pytest.fixture
def rng():
    """Deterministic RNG shared by randomised tests."""
    return np.random.default_rng(20030707)


@pytest.fixture
def dna_scheme():
    """DNA +5/−4 matrix with linear gap −6."""
    return ScoringScheme(dna_simple(), linear_gap(-6))


@pytest.fixture
def protein_scheme():
    """BLOSUM62 with linear gap −8."""
    return ScoringScheme(blosum62(), linear_gap(-8))


@pytest.fixture
def affine_scheme():
    """BLOSUM62 with affine gap (−11, −2)."""
    return ScoringScheme(blosum62(), affine_gap(-11, -2))


@pytest.fixture
def affine_dna_scheme():
    """DNA matrix with affine gap (−8, −1)."""
    return ScoringScheme(dna_simple(), affine_gap(-8, -1))


@pytest.fixture
def table1_scheme():
    """The paper's exact worked-example scheme (Table 1, gap −10)."""
    return paper_scheme()


def random_dna(rng, length):
    """Random DNA string of a given length."""
    return "".join(rng.choice(list("ACGT"), length))


def random_protein(rng, length, alphabet="ARNDCQEGHILKMFPSTWYV"):
    """Random protein string of a given length."""
    return "".join(rng.choice(list(alphabet), length))
