"""Tests for the adaptive planner."""

import pytest

from repro.core import fastlsa
from repro import AlignConfig
from repro.core.planner import (
    fastlsa_peak_cells,
    grid_cells_bound,
    ops_ratio_bound,
    plan_alignment,
)
from repro.errors import ConfigError
from tests.conftest import random_dna


class TestOpsRatioBound:
    def test_closed_form(self):
        assert ops_ratio_bound(2) == pytest.approx(3.0)
        assert ops_ratio_bound(3) == pytest.approx(2.0)
        assert ops_ratio_bound(11) == pytest.approx(1.2)

    def test_monotone_decreasing(self):
        ratios = [ops_ratio_bound(k) for k in range(2, 30)]
        assert ratios == sorted(ratios, reverse=True)

    def test_approaches_one(self):
        assert ops_ratio_bound(1000) < 1.01

    def test_invalid_k(self):
        with pytest.raises(ConfigError):
            ops_ratio_bound(1)


class TestPlan:
    def test_full_matrix_when_it_fits(self):
        plan = plan_alignment(100, 100, 1_000_000)
        assert plan.method == "full-matrix"
        assert plan.predicted_ops_ratio == 1.0

    def test_fastlsa_when_it_does_not(self):
        plan = plan_alignment(10_000, 10_000, 500_000)
        assert plan.method == "fastlsa"
        assert plan.config.k >= 2

    def test_larger_budget_larger_k(self):
        p1 = plan_alignment(10_000, 10_000, 200_000)
        p2 = plan_alignment(10_000, 10_000, 800_000)
        assert p2.config.k >= p1.config.k

    def test_predicted_peak_within_budget(self):
        for budget in (200_000, 500_000, 1_000_000):
            plan = plan_alignment(20_000, 20_000, budget)
            if plan.method == "fastlsa":
                assert plan.predicted_peak_cells <= budget

    def test_affine_needs_more(self):
        lin = plan_alignment(10_000, 10_000, 400_000, affine=False)
        aff = plan_alignment(10_000, 10_000, 400_000, affine=True)
        assert aff.config.k <= lin.config.k

    def test_infeasible_raises(self):
        with pytest.raises(ConfigError, match="cannot align"):
            plan_alignment(10**6, 10**6, 1000)

    def test_tiny_budget_rejected(self):
        with pytest.raises(ConfigError):
            plan_alignment(10, 10, 4)

    def test_bad_fraction_rejected(self):
        with pytest.raises(ConfigError):
            plan_alignment(100, 100, 10_000, base_fraction=1.5)

    def test_max_k_respected(self):
        plan = plan_alignment(1000, 1000, 10**9, max_k=7)
        if plan.method == "fastlsa":
            assert plan.config.k <= 7


class TestPlanHonoured:
    def test_measured_peak_within_budget(self, rng, dna_scheme):
        n, budget = 1200, 60_000
        a, b = random_dna(rng, n), random_dna(rng, n)
        plan = plan_alignment(n, n, budget)
        assert plan.method == "fastlsa"
        al = fastlsa(a, b, dna_scheme, config=plan.config)
        assert al.stats.peak_cells_resident <= budget
        assert al.score == fastlsa(a, b, dna_scheme, config=AlignConfig(k=2, base_cells=1024)).score

    def test_bound_formulas_positive(self):
        assert grid_cells_bound(100, 100, 4, False) > 0
        assert fastlsa_peak_cells(100, 100, 4, 1000, True) > 0
