"""Property-based tests (hypothesis) on the library's core invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.align import check_alignment, score_gapped
from repro import AlignConfig
from repro.baselines import hirschberg, needleman_wunsch, smith_waterman
from repro.core import fastlsa
from repro.kernels import boundary_vectors, sweep_last_row_col, sweep_matrix
from repro.kernels.reference import brute_force_best_score
from repro.scoring import ScoringScheme, affine_gap, dna_simple, linear_gap

DNA = st.text(alphabet="ACGT", max_size=24)
DNA_SHORT = st.text(alphabet="ACGT", max_size=5)
GAPS = st.integers(min_value=-12, max_value=-1)

def scheme_for(gap):
    return ScoringScheme(dna_simple(), linear_gap(gap))

@st.composite
def affine_schemes(draw):
    extend = draw(st.integers(min_value=-4, max_value=-1))
    open_ = draw(st.integers(min_value=extend - 8, max_value=extend))
    return ScoringScheme(dna_simple(), affine_gap(open_, extend))


class TestDPSemantics:
    """DP scores equal the brute-force optimum over all alignments."""

    @settings(max_examples=40, deadline=None)
    @given(a=DNA_SHORT, b=DNA_SHORT, gap=GAPS)
    def test_nw_is_brute_force_optimum_linear(self, a, b, gap):
        scheme = scheme_for(gap)
        assert needleman_wunsch(a, b, scheme).score == brute_force_best_score(a, b, scheme)

    @settings(max_examples=25, deadline=None)
    @given(a=DNA_SHORT, b=DNA_SHORT, scheme=affine_schemes())
    def test_nw_is_brute_force_optimum_affine(self, a, b, scheme):
        assert needleman_wunsch(a, b, scheme).score == brute_force_best_score(a, b, scheme)


class TestAlgorithmEquivalence:
    """All global aligners return the same optimal score."""

    @settings(max_examples=30, deadline=None)
    @given(a=DNA, b=DNA, gap=GAPS, k=st.integers(2, 6),
           base=st.sampled_from([16, 64, 1024]))
    def test_fastlsa_equals_nw(self, a, b, gap, k, base):
        scheme = scheme_for(gap)
        f = fastlsa(a, b, scheme, config=AlignConfig(k=k, base_cells=base))
        n = needleman_wunsch(a, b, scheme)
        assert f.score == n.score
        ok, msg = check_alignment(f, scheme)
        assert ok, msg

    @settings(max_examples=30, deadline=None)
    @given(a=DNA, b=DNA, gap=GAPS)
    def test_hirschberg_equals_nw(self, a, b, gap):
        scheme = scheme_for(gap)
        h = hirschberg(a, b, scheme, base_cells=4)
        assert h.score == needleman_wunsch(a, b, scheme).score
        assert check_alignment(h, scheme)[0]

    @settings(max_examples=20, deadline=None)
    @given(a=DNA, b=DNA, scheme=affine_schemes(), k=st.integers(2, 4))
    def test_fastlsa_affine_equals_nw(self, a, b, scheme, k):
        f = fastlsa(a, b, scheme, config=AlignConfig(k=k, base_cells=36))
        n = needleman_wunsch(a, b, scheme)
        assert f.score == n.score
        assert check_alignment(f, scheme)[0]


class TestKernelInvariants:
    @settings(max_examples=30, deadline=None)
    @given(a=DNA, b=DNA, gap=GAPS)
    def test_last_row_col_matches_dense(self, a, b, gap):
        scheme = scheme_for(gap)
        ac, bc = scheme.encode(a), scheme.encode(b)
        fr, fc = boundary_vectors(len(a), len(b), gap)
        H = sweep_matrix(ac, bc, scheme.matrix.table, gap, fr, fc)
        lr, lc = sweep_last_row_col(ac, bc, scheme.matrix.table, gap, fr, fc)
        assert np.array_equal(lr, H[-1]) and np.array_equal(lc, H[:, -1])

    @settings(max_examples=30, deadline=None)
    @given(a=DNA, b=DNA, gap=GAPS, mid=st.integers(0, 24))
    def test_row_split_composition(self, a, b, gap, mid):
        """Sweeping rows 0..mid then mid..M equals one full sweep."""
        mid = min(mid, len(a))
        scheme = scheme_for(gap)
        ac, bc = scheme.encode(a), scheme.encode(b)
        table = scheme.matrix.table
        fr, fc = boundary_vectors(len(a), len(b), gap)
        full_lr, _ = sweep_last_row_col(ac, bc, table, gap, fr, fc)
        top_lr, _ = sweep_last_row_col(ac[:mid], bc, table, gap, fr, fc[: mid + 1])
        bot_lr, _ = sweep_last_row_col(ac[mid:], bc, table, gap, top_lr, fc[mid:])
        assert np.array_equal(bot_lr, full_lr)

    @settings(max_examples=25, deadline=None)
    @given(a=DNA, b=DNA, gap=GAPS)
    def test_score_symmetry(self, a, b, gap):
        """Swapping the sequences leaves the optimal score unchanged
        (symmetric matrix, symmetric gap model)."""
        scheme = scheme_for(gap)
        assert (
            needleman_wunsch(a, b, scheme).score
            == needleman_wunsch(b, a, scheme).score
        )

    @settings(max_examples=25, deadline=None)
    @given(a=DNA, b=DNA, gap=GAPS)
    def test_reversal_invariance(self, a, b, gap):
        """Reversing both sequences leaves the optimal score unchanged."""
        scheme = scheme_for(gap)
        assert (
            needleman_wunsch(a, b, scheme).score
            == needleman_wunsch(a[::-1], b[::-1], scheme).score
        )


class TestAlignmentInvariants:
    @settings(max_examples=30, deadline=None)
    @given(a=DNA, b=DNA, gap=GAPS, k=st.integers(2, 5))
    def test_path_monotone_and_complete(self, a, b, gap, k):
        scheme = scheme_for(gap)
        al = fastlsa(a, b, scheme, config=AlignConfig(k=k, base_cells=16))
        path = al.path
        assert path.start == (0, 0)
        assert path.end == (len(a), len(b))
        for (i0, j0), (i1, j1) in zip(path.points, path.points[1:]):
            assert (i1 - i0, j1 - j0) in ((1, 1), (1, 0), (0, 1))

    @settings(max_examples=30, deadline=None)
    @given(a=DNA, b=DNA, gap=GAPS)
    def test_gapped_strings_respell_inputs(self, a, b, gap):
        scheme = scheme_for(gap)
        al = needleman_wunsch(a, b, scheme)
        assert al.gapped_a.replace("-", "") == a
        assert al.gapped_b.replace("-", "") == b
        assert score_gapped(al.gapped_a, al.gapped_b, scheme) == al.score


class TestLocalInvariants:
    @settings(max_examples=25, deadline=None)
    @given(a=DNA, b=DNA, gap=GAPS)
    def test_local_at_least_zero_and_at_most_selfmatch(self, a, b, gap):
        scheme = scheme_for(gap)
        loc = smith_waterman(a, b, scheme)
        assert loc.score >= 0
        assert loc.score <= 5 * min(len(a), len(b))

    @settings(max_examples=25, deadline=None)
    @given(a=DNA, gap=GAPS)
    def test_local_self_alignment_is_perfect(self, a, gap):
        scheme = scheme_for(gap)
        loc = smith_waterman(a, a, scheme)
        assert loc.score == 5 * len(a)

    @settings(max_examples=20, deadline=None)
    @given(a=DNA, b=DNA, gap=GAPS)
    def test_local_dominates_global(self, a, b, gap):
        """The best local score is >= the global score (local may trim)."""
        scheme = scheme_for(gap)
        loc = smith_waterman(a, b, scheme)
        glob = needleman_wunsch(a, b, scheme)
        assert loc.score >= glob.score
