"""Tests for the algorithm trace generators and the F8 claim."""

import pytest

from repro.errors import ConfigError
from repro.memsim import (
    CacheConfig,
    CacheSim,
    StackAllocator,
    compare_algorithms,
    run_cache_experiment,
    trace_fastlsa,
    trace_full_matrix,
    trace_hirschberg,
)


class TestStackAllocator:
    def test_bump_and_release(self):
        a = StackAllocator()
        b1 = a.alloc(100)
        mark = a.mark()
        b2 = a.alloc(50)
        assert b2 == b1 + 100
        a.release(mark)
        b3 = a.alloc(10)
        assert b3 == b2  # reuses released space

    def test_release_validation(self):
        a = StackAllocator()
        with pytest.raises(ConfigError):
            a.release(10)


BIG = CacheConfig(capacity_cells=4096, line_cells=8, assoc=8)


class TestTraces:
    def test_fm_access_volume(self):
        sim = CacheSim(BIG)
        trace_full_matrix(sim, 64, 64)
        # FindScore touches ~2 * m * (n+1) cells = 2*64*65/8 lines minimum.
        assert sim.stats.accesses >= 2 * 64 * 65 / 8

    def test_hirschberg_about_double_fm_accesses(self):
        s1, s2 = CacheSim(BIG), CacheSim(BIG)
        trace_full_matrix(s1, 128, 128)
        trace_hirschberg(s2, 128, 128, base_cells=64)
        ratio = s2.stats.accesses / s1.stats.accesses
        assert 1.5 <= ratio <= 3.0

    def test_fastlsa_between_fm_and_hirschberg(self):
        sf, sh, sl = CacheSim(BIG), CacheSim(BIG), CacheSim(BIG)
        trace_full_matrix(sf, 128, 128)
        trace_hirschberg(sh, 128, 128, base_cells=64)
        trace_fastlsa(sl, 128, 128, k=4, base_cells=64)
        assert sf.stats.accesses <= sl.stats.accesses <= sh.stats.accesses * 1.1

    def test_fastlsa_invalid_k(self):
        with pytest.raises(ConfigError):
            trace_fastlsa(CacheSim(BIG), 32, 32, k=1, base_cells=64)

    def test_empty_problem(self):
        sim = CacheSim(BIG)
        trace_hirschberg(sim, 0, 10)
        trace_fastlsa(sim, 0, 10, k=2, base_cells=64)


class TestPaperClaimF8:
    """'Due to memory caching effects, FastLSA is always as fast or faster
    than Hirschberg and the FM algorithms.'"""

    def test_fastlsa_never_slower_when_matrix_exceeds_cache(self):
        cache = CacheConfig(capacity_cells=2048, line_cells=8, assoc=8)
        for n in (96, 160, 256):
            rows = compare_algorithms(n, n, cache, k=4, base_cells=1024)
            times = {r["algorithm"]: r["time"] for r in rows}
            assert times["fastlsa"] <= times["full-matrix"] * 1.02, n
            assert times["fastlsa"] <= times["hirschberg"] * 1.02, n

    def test_fm_miss_rate_grows_beyond_cache(self):
        cache = CacheConfig(capacity_cells=2048, line_cells=8, assoc=8)
        small = run_cache_experiment("full-matrix", 24, 24, cache)
        large = run_cache_experiment("full-matrix", 256, 256, cache)
        # Beyond the cache, nearly every write misses (rate -> ~0.5 with
        # one cached read per written line); in-cache runs only pay
        # compulsory misses.
        assert large.miss_rate > 1.5 * small.miss_rate
        assert large.miss_rate > 0.4

    def test_fastlsa_miss_rate_stays_low(self):
        cache = CacheConfig(capacity_cells=2048, line_cells=8, assoc=8)
        res = run_cache_experiment("fastlsa", 256, 256, cache, k=4, base_cells=1024)
        fm = run_cache_experiment("full-matrix", 256, 256, cache)
        assert res.miss_rate < fm.miss_rate

    def test_unknown_algorithm(self):
        with pytest.raises(ConfigError):
            run_cache_experiment("bogus", 10, 10, BIG)
