"""Tests for the Myers–Miller affine-gap linear-space baseline."""

import pytest

from repro.align import check_alignment
from repro.baselines import needleman_wunsch
from repro.baselines.myers_miller import myers_miller
from repro.errors import ConfigError
from repro.scoring import ScoringScheme, affine_gap, dna_simple
from tests.conftest import random_dna, random_protein


class TestCorrectness:
    @pytest.mark.parametrize("base_cells", [16, 256, 4096])
    def test_matches_nw_random(self, rng, affine_scheme, base_cells):
        for _ in range(8):
            a = random_protein(rng, int(rng.integers(0, 50)))
            b = random_protein(rng, int(rng.integers(0, 50)))
            mm = myers_miller(a, b, affine_scheme, base_cells=base_cells)
            nw = needleman_wunsch(a, b, affine_scheme)
            assert mm.score == nw.score, (a, b, base_cells)
            ok, msg = check_alignment(mm, affine_scheme)
            assert ok, msg

    @pytest.mark.parametrize("open_,extend", [(-12, -1), (-5, -5), (-8, -2)])
    def test_gap_model_sweep(self, rng, open_, extend):
        scheme = ScoringScheme(dna_simple(), affine_gap(open_, extend))
        for _ in range(8):
            a = random_dna(rng, int(rng.integers(0, 40)))
            b = random_dna(rng, int(rng.integers(0, 40)))
            mm = myers_miller(a, b, scheme, base_cells=16)
            nw = needleman_wunsch(a, b, scheme)
            assert mm.score == nw.score, (a, b, open_, extend)

    def test_long_gap_runs_cross_splits(self):
        """Deletions much longer than one half force mid-run joins."""
        scheme = ScoringScheme(dna_simple(), affine_gap(-20, -1))
        a = "ACGT" + "G" * 40 + "ACGT"
        b = "ACGTACGT"
        mm = myers_miller(a, b, scheme, base_cells=16)
        nw = needleman_wunsch(a, b, scheme)
        assert mm.score == nw.score
        assert check_alignment(mm, scheme)[0]

    def test_gap_run_not_double_opened(self):
        """A single long run must be charged one open."""
        scheme = ScoringScheme(dna_simple(), affine_gap(-10, -1))
        a = "A" * 31  # odd length so the run spans the middle row
        b = "A"
        mm = myers_miller(a, b, scheme, base_cells=16)
        assert mm.score == 5 - 10 - 29  # match + open + 29 extends


class TestEdgeCases:
    def test_empty_inputs(self, affine_scheme):
        assert myers_miller("", "", affine_scheme).score == 0
        al = myers_miller("ARN", "", affine_scheme)
        assert al.score == affine_scheme.gap.cost(3)
        al = myers_miller("", "ARN", affine_scheme)
        assert al.score == affine_scheme.gap.cost(3)

    def test_single_row(self, affine_scheme):
        for b in ("", "A", "ARNDC"):
            mm = myers_miller("R", b, affine_scheme, base_cells=16)
            nw = needleman_wunsch("R", b, affine_scheme)
            assert mm.score == nw.score, b

    def test_two_rows(self, affine_scheme):
        mm = myers_miller("AR", "RNDAR", affine_scheme, base_cells=16)
        nw = needleman_wunsch("AR", "RNDAR", affine_scheme)
        assert mm.score == nw.score

    def test_tiny_base_cells_rejected(self, affine_scheme):
        with pytest.raises(ConfigError):
            myers_miller("AR", "AR", affine_scheme, base_cells=8)

    def test_linear_scheme_accepted(self, dna_scheme, rng):
        a, b = random_dna(rng, 25), random_dna(rng, 30)
        mm = myers_miller(a, b, dna_scheme, base_cells=16)
        assert mm.score == needleman_wunsch(a, b, dna_scheme).score


class TestComplexity:
    def test_roughly_double_operations(self, rng, affine_scheme):
        n = 250
        a, b = random_protein(rng, n), random_protein(rng, n)
        mm = myers_miller(a, b, affine_scheme, base_cells=256)
        assert 1.8 <= mm.stats.cells_computed / (n * n) <= 2.3

    def test_linear_space(self, rng, affine_scheme):
        n = 300
        a, b = random_protein(rng, n), random_protein(rng, n)
        mm = myers_miller(a, b, affine_scheme, base_cells=256)
        # O(n) sweep rows + the base-case buffer, nowhere near n^2 cells.
        assert mm.stats.peak_cells_resident < 10 * (2 * n) + 3 * 256
        assert mm.stats.peak_cells_resident < (n * n) / 40
