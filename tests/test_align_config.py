"""Tests for the unified AlignConfig surface and the legacy-keyword gate.

The API-redesign contract: ``config=AlignConfig(...)`` is the one way to
parameterize alignment across every entry point.  The loose ``k=`` /
``base_cells=`` / ``max_workers=`` keywords warned for one release line
and now raise :class:`~repro.errors.ConfigError` naming the
:class:`AlignConfig` field to use instead.  The wire-protocol schema
(``from_dict``) rejects typos loudly.
"""

import warnings

import pytest

import repro
from repro import AlignConfig, ConfigError, FastLSAConfig, batch_align, fastlsa
from repro.core.config import resolve_config
from repro.core.modes import EndsFree, ends_free_align
from repro.parallel import parallel_fastlsa

from tests.conftest import random_dna


class TestAlignConfig:
    def test_defaults_and_inheritance(self):
        cfg = AlignConfig()
        assert isinstance(cfg, FastLSAConfig)
        assert cfg.k >= 2 and cfg.max_workers is None
        assert cfg.band is None and cfg.kernel is None

    def test_validation(self):
        with pytest.raises(ConfigError):
            AlignConfig(k=1)
        with pytest.raises(ConfigError):
            AlignConfig(base_cells=2)
        with pytest.raises(ConfigError):
            AlignConfig(max_workers=0)
        with pytest.raises(ConfigError):
            AlignConfig(max_workers=-3)

    def test_band_validation(self):
        assert AlignConfig(band=16).band == 16
        assert AlignConfig(band="auto").band == "auto"
        for bad in (0, -4, "wide", True, 2.5):
            with pytest.raises(ConfigError, match="band"):
                AlignConfig(band=bad)

    def test_kernel_validation(self):
        assert AlignConfig(kernel="numpy").kernel == "numpy"
        assert AlignConfig(kernel="auto").kernel == "auto"
        with pytest.raises(ConfigError, match="kernel"):
            AlignConfig(kernel="fortran")

    def test_from_dict_roundtrip(self):
        cfg = AlignConfig.from_dict(
            {"k": 4, "base_cells": 4096, "max_workers": 2,
             "band": 32, "kernel": "numpy"}
        )
        assert (cfg.k, cfg.base_cells, cfg.max_workers) == (4, 4096, 2)
        assert (cfg.band, cfg.kernel) == (32, "numpy")
        assert AlignConfig.from_dict(cfg.to_dict()) == cfg

    def test_from_dict_partial_and_null(self):
        cfg = AlignConfig.from_dict({"k": 3, "max_workers": None})
        assert cfg.k == 3
        assert cfg.base_cells == AlignConfig().base_cells
        assert cfg.max_workers is None

    def test_from_dict_band_auto(self):
        assert AlignConfig.from_dict({"band": "auto"}).band == "auto"
        with pytest.raises(ConfigError, match="band"):
            AlignConfig.from_dict({"band": True})
        with pytest.raises(ConfigError, match="band"):
            AlignConfig.from_dict({"band": "narrow"})

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigError, match="unknown config keys"):
            AlignConfig.from_dict({"kay": 4})

    def test_from_dict_rejects_non_mapping_and_bool(self):
        with pytest.raises(ConfigError):
            AlignConfig.from_dict([("k", 4)])
        with pytest.raises(ConfigError, match="must be an integer"):
            AlignConfig.from_dict({"k": True})
        with pytest.raises(ConfigError, match="must be an integer"):
            AlignConfig.from_dict({"base_cells": "big"})
        with pytest.raises(ConfigError, match="must be a string"):
            AlignConfig.from_dict({"kernel": 3})


class TestResolveConfig:
    def test_legacy_keyword_raises_even_with_config(self):
        with pytest.raises(ConfigError, match="k keyword"):
            resolve_config(AlignConfig(k=5), k=9)

    def test_plain_fastlsa_config_is_wrapped(self):
        cfg = resolve_config(FastLSAConfig(k=3, base_cells=1024))
        assert isinstance(cfg, AlignConfig)
        assert (cfg.k, cfg.base_cells) == (3, 1024)

    def test_no_args_is_silent_defaults(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            cfg = resolve_config()
        assert cfg == AlignConfig()

    def test_error_names_call_site_keywords_and_fields(self):
        with pytest.raises(
            ConfigError,
            match=r"batch_align: the k keyword\(s\) were removed.*AlignConfig\(k=\.\.\.\)",
        ):
            resolve_config(k=4, where="batch_align")
        with pytest.raises(
            ConfigError, match=r"fastlsa: the k, base_cells keyword\(s\) were removed"
        ):
            resolve_config(k=4, base_cells=256, where="fastlsa")


class TestEntryPointsAcceptConfig:
    """Every FastLSA-backed entry point takes config= without warning,
    and the removed legacy keywords raise ConfigError."""

    def test_fastlsa(self, rng, dna_scheme):
        a, b = random_dna(rng, 120), random_dna(rng, 130)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            via_config = fastlsa(a, b, dna_scheme, config=AlignConfig(k=3, base_cells=512))
        assert via_config.score is not None
        with pytest.raises(ConfigError, match="fastlsa: the k, base_cells"):
            fastlsa(a, b, dna_scheme, k=3, base_cells=512)

    def test_parallel_fastlsa(self, rng, dna_scheme):
        a, b = random_dna(rng, 150), random_dna(rng, 150)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            via_config = parallel_fastlsa(
                a, b, dna_scheme, P=2, config=AlignConfig(k=3, base_cells=900)
            )
        assert via_config.score is not None
        with pytest.raises(ConfigError, match="parallel_fastlsa"):
            parallel_fastlsa(a, b, dna_scheme, P=2, k=3, base_cells=900)

    def test_batch_align(self, rng, dna_scheme):
        q = random_dna(rng, 60)
        targets = [random_dna(rng, 60) for _ in range(4)]
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            via_config = batch_align(
                q, targets, dna_scheme,
                config=AlignConfig(k=3, base_cells=512, max_workers=2),
            )
        assert [h.score for h in via_config]
        with pytest.raises(ConfigError, match="max_workers"):
            batch_align(q, targets, dna_scheme, k=3, base_cells=512, max_workers=2)

    def test_fastlsa_local(self, rng, dna_scheme):
        from repro import fastlsa_local

        a, b = random_dna(rng, 100), random_dna(rng, 100)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            via_config = fastlsa_local(a, b, dna_scheme, config=AlignConfig(k=3))
        assert via_config.score >= 0
        with pytest.raises(ConfigError, match="fastlsa_local"):
            fastlsa_local(a, b, dna_scheme, k=3)

    def test_ends_free_align(self, rng, dna_scheme):
        a, b = random_dna(rng, 90), random_dna(rng, 110)
        free = EndsFree(a_start=True, a_end=True, b_start=False, b_end=False)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            via_config = ends_free_align(a, b, dna_scheme, free,
                                         config=AlignConfig(k=3))
        assert via_config.score is not None
        with pytest.raises(ConfigError, match="ends_free_align"):
            ends_free_align(a, b, dna_scheme, free, k=3)

    def test_batch_align_rejects_bad_max_workers(self, dna_scheme):
        with pytest.raises(ConfigError):
            batch_align("ACGT", ["ACGA"], dna_scheme,
                        config=AlignConfig(max_workers=0))


class TestTopLevelAlign:
    def test_align_routes_config_to_fastlsa(self, rng, dna_scheme):
        a, b = random_dna(rng, 80), random_dna(rng, 80)
        result = repro.align(a, b, dna_scheme, config=AlignConfig(k=3, base_cells=512))
        assert result.algorithm == "fastlsa"
        baseline = repro.align(a, b, dna_scheme, method="needleman-wunsch")
        assert result.score == baseline.score

    def test_align_rejects_config_for_other_methods(self, dna_scheme):
        for method in ("needleman-wunsch", "hirschberg"):
            with pytest.raises(ConfigError, match="takes no alignment config"):
                repro.align("ACGT", "ACGA", dna_scheme, method=method,
                            config=AlignConfig())

    def test_simulator_keeps_plain_keywords(self, rng, dna_scheme):
        # simulated_parallel_fastlsa is a modelling API: its k/base_cells
        # sweep parameters are plain keywords, not routed through
        # resolve_config, so they keep working.
        a, b = random_dna(rng, 80), random_dna(rng, 80)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            result, _report = repro.simulated_parallel_fastlsa(
                a, b, dna_scheme, P=2, k=3, base_cells=512
            )
        assert result.score == fastlsa(
            a, b, dna_scheme, config=AlignConfig(k=3, base_cells=512)
        ).score


class TestTuneField:
    """PR 9: the ``tune`` knob rides the NDJSON wire schema."""

    def test_tune_roundtrip(self):
        cfg = AlignConfig.from_dict({"tune": "auto"})
        assert cfg.tune == "auto"
        assert AlignConfig.from_dict(cfg.to_dict()) == cfg
        assert AlignConfig.from_dict({"tune": None}).tune is None

    def test_tune_validation(self):
        with pytest.raises(ConfigError):
            AlignConfig(tune="")
        with pytest.raises(ConfigError):
            AlignConfig.from_dict({"tune": 7})
