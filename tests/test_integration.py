"""Cross-algorithm integration tests.

Every global aligner in the library must produce the same optimal score on
the same input, and every alignment must survive the independent
re-scorer.  These are the end-to-end guarantees the benchmark harness
relies on.
"""

import pytest

from repro import ALGORITHMS, align
from repro import AlignConfig
from repro.align import check_alignment
from repro.baselines import hirschberg, needleman_wunsch
from repro.core import fastlsa
from repro.errors import ConfigError
from repro.parallel import parallel_fastlsa
from repro.workloads import dna_pair, protein_pair
from repro.scoring import ScoringScheme, blosum62, linear_gap


class TestAllAlgorithmsAgree:
    def test_on_suite_pair(self, dna_scheme):
        a, b = dna_pair(300, divergence=0.2, seed=9)
        results = {
            "nw": needleman_wunsch(a, b, dna_scheme),
            "hirschberg": hirschberg(a, b, dna_scheme),
            "fastlsa-k2": fastlsa(a, b, dna_scheme, config=AlignConfig(k=2, base_cells=256)),
            "fastlsa-k8": fastlsa(a, b, dna_scheme, config=AlignConfig(k=8, base_cells=1024)),
            "parallel-p4": parallel_fastlsa(a, b, dna_scheme, P=4, config=AlignConfig(k=4, base_cells=256)),
        }
        scores = {name: r.score for name, r in results.items()}
        assert len(set(scores.values())) == 1, scores
        for name, r in results.items():
            ok, msg = check_alignment(r, dna_scheme)
            assert ok, (name, msg)

    def test_on_protein_pair(self):
        scheme = ScoringScheme(blosum62(), linear_gap(-8))
        a, b = protein_pair(250, divergence=0.3, seed=4)
        s1 = needleman_wunsch(a, b, scheme).score
        s2 = hirschberg(a, b, scheme).score
        s3 = fastlsa(a, b, scheme, config=AlignConfig(k=4, base_cells=512)).score
        assert s1 == s2 == s3

    def test_highly_divergent_pair(self, dna_scheme):
        a, b = dna_pair(200, divergence=0.8, seed=13)
        s1 = needleman_wunsch(a, b, dna_scheme).score
        s2 = fastlsa(a, b, dna_scheme, config=AlignConfig(k=3, base_cells=64))
        assert s2.score == s1


class TestAlignDispatcher:
    def test_default_is_fastlsa(self, dna_scheme):
        r = align("ACGT", "ACGA", dna_scheme)
        assert r.algorithm == "fastlsa"

    def test_method_selection(self, dna_scheme):
        r = align("ACGT", "ACGA", dna_scheme, method="hirschberg")
        assert r.algorithm == "hirschberg"

    def test_kwargs_forwarded(self, dna_scheme):
        r = align("ACGTACGT", "ACGTTCGT", dna_scheme, method="fastlsa", config=AlignConfig(k=2, base_cells=16))
        assert r.algorithm == "fastlsa"

    def test_unknown_method(self, dna_scheme):
        with pytest.raises(ConfigError):
            align("A", "C", dna_scheme, method="banana")

    def test_registry_contents(self):
        assert {"fastlsa", "hirschberg", "needleman-wunsch"} <= set(ALGORITHMS)


class TestFastaToAlignmentPipeline:
    def test_roundtrip(self, tmp_path, dna_scheme):
        from repro.align import read_fasta, write_fasta

        a, b = dna_pair(120, seed=2)
        write_fasta(tmp_path / "pair.fasta", [a, b])
        ra, rb = read_fasta(tmp_path / "pair.fasta")
        r1 = fastlsa(ra, rb, dna_scheme, config=AlignConfig(k=4, base_cells=128))
        r2 = fastlsa(a, b, dna_scheme, config=AlignConfig(k=4, base_cells=128))
        assert r1.score == r2.score


class TestStatsConsistency:
    def test_fastlsa_cells_at_least_mn(self, dna_scheme):
        a, b = dna_pair(150, seed=5)
        al = fastlsa(a, b, dna_scheme, config=AlignConfig(k=3, base_cells=64))
        assert al.stats.cells_computed >= len(a) * len(b)

    def test_wall_time_recorded(self, dna_scheme):
        a, b = dna_pair(100, seed=6)
        al = fastlsa(a, b, dna_scheme)
        assert al.stats.wall_time > 0
