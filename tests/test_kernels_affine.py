"""Tests for repro.kernels.affine against the pure-Python reference."""

import numpy as np
import pytest

from repro.kernels import (
    NEG_INF,
    OpCounter,
    affine_boundaries,
    sweep_last_row_col_affine,
    sweep_matrix_affine,
)
from repro.kernels.reference import ref_matrix_affine
from tests.conftest import random_dna


class TestAffineBoundaries:
    def test_values(self):
        rh, rf, ch, ce = affine_boundaries(2, 3, -10, -2)
        assert list(rh) == [0, -10, -12, -14]
        assert list(ch) == [0, -10, -12]
        assert all(v == NEG_INF for v in rf)
        assert all(v == NEG_INF for v in ce)

    def test_zero_lengths(self):
        rh, rf, ch, ce = affine_boundaries(0, 0, -10, -2)
        assert list(rh) == [0] and list(ch) == [0]


class TestSweepMatrixAffine:
    @pytest.mark.parametrize("open_,extend", [(-10, -2), (-5, -5), (-8, -1), (-3, -3)])
    def test_matches_reference(self, rng, dna_scheme, open_, extend):
        table = dna_scheme.matrix.table
        for _ in range(15):
            M, N = rng.integers(0, 12, 2)
            a = dna_scheme.encode(random_dna(rng, M))
            b = dna_scheme.encode(random_dna(rng, N))
            rh, rf, ch, ce = affine_boundaries(M, N, open_, extend)
            H, E, F = sweep_matrix_affine(a, b, table, open_, extend, rh, rf, ch, ce)
            Hr, Er, Fr = ref_matrix_affine(a, b, table, open_, extend)
            assert np.array_equal(H, Hr)
            assert np.array_equal(E[:, 1:], Er[:, 1:])
            assert np.array_equal(F[1:, :], Fr[1:, :])

    def test_linear_special_case_agrees_with_linear_kernel(self, rng, dna_scheme):
        from repro.kernels import boundary_vectors, sweep_matrix

        table = dna_scheme.matrix.table
        for _ in range(10):
            M, N = rng.integers(1, 12, 2)
            a = dna_scheme.encode(random_dna(rng, M))
            b = dna_scheme.encode(random_dna(rng, N))
            rh, rf, ch, ce = affine_boundaries(M, N, -6, -6)
            Ha, _, _ = sweep_matrix_affine(a, b, table, -6, -6, rh, rf, ch, ce)
            fr, fc = boundary_vectors(M, N, -6)
            Hl = sweep_matrix(a, b, table, -6, fr, fc)
            assert np.array_equal(Ha, Hl)

    def test_counter(self, dna_scheme):
        a = dna_scheme.encode("ACGT")
        b = dna_scheme.encode("ACG")
        rh, rf, ch, ce = affine_boundaries(4, 3, -8, -1)
        c = OpCounter()
        sweep_matrix_affine(a, b, dna_scheme.matrix.table, -8, -1, rh, rf, ch, ce, counter=c)
        assert c.cells == 12

    def test_shape_checked(self, dna_scheme):
        a = dna_scheme.encode("AC")
        b = dna_scheme.encode("AC")
        rh, rf, ch, ce = affine_boundaries(2, 3, -8, -1)  # wrong N
        with pytest.raises(ValueError):
            sweep_matrix_affine(a, b, dna_scheme.matrix.table, -8, -1, rh, rf, ch, ce)


class TestSweepLastRowColAffine:
    def test_edges_match_matrix(self, rng, dna_scheme):
        table = dna_scheme.matrix.table
        for _ in range(25):
            M, N = rng.integers(1, 14, 2)
            a = dna_scheme.encode(random_dna(rng, M))
            b = dna_scheme.encode(random_dna(rng, N))
            rh, rf, ch, ce = affine_boundaries(M, N, -9, -2)
            Hr, Er, Fr = ref_matrix_affine(a, b, table, -9, -2)
            lrh, lrf, lch, lce = sweep_last_row_col_affine(
                a, b, table, -9, -2, rh, rf, ch, ce
            )
            assert np.array_equal(lrh, Hr[-1])
            assert np.array_equal(lch, Hr[:, -1])
            assert np.array_equal(lrf[1:], Fr[-1, 1:])
            assert np.array_equal(lce[1:], Er[1:, -1])

    def test_degenerate_m0(self, dna_scheme):
        b = dna_scheme.encode("ACGT")
        rh, rf, ch, ce = affine_boundaries(0, 4, -9, -2)
        lrh, lrf, lch, lce = sweep_last_row_col_affine(
            np.empty(0, np.int16), b, dna_scheme.matrix.table, -9, -2, rh, rf, ch, ce
        )
        assert np.array_equal(lrh, rh)
        assert list(lch) == [rh[-1]]

    def test_degenerate_n0(self, dna_scheme):
        a = dna_scheme.encode("ACGT")
        rh, rf, ch, ce = affine_boundaries(4, 0, -9, -2)
        lrh, lrf, lch, lce = sweep_last_row_col_affine(
            a, np.empty(0, np.int16), dna_scheme.matrix.table, -9, -2, rh, rf, ch, ce
        )
        assert np.array_equal(lch, ch)
        assert list(lrh) == [ch[-1]]

    def test_subproblem_stitching(self, rng, dna_scheme):
        """Splitting a problem at a row must reproduce the full-problem edges
        when the (H, F) row cache is carried across the split."""
        table = dna_scheme.matrix.table
        M, N = 10, 8
        a = dna_scheme.encode(random_dna(rng, M))
        b = dna_scheme.encode(random_dna(rng, N))
        rh, rf, ch, ce = affine_boundaries(M, N, -7, -1)
        full = sweep_last_row_col_affine(a, b, table, -7, -1, rh, rf, ch, ce)
        mid = 6
        top = sweep_last_row_col_affine(a[:mid], b, table, -7, -1, rh, rf, ch[: mid + 1], ce[: mid + 1])
        bot = sweep_last_row_col_affine(
            a[mid:], b, table, -7, -1, top[0], top[1], ch[mid:], ce[mid:]
        )
        assert np.array_equal(bot[0], full[0])        # last row H
        assert np.array_equal(bot[1][1:], full[1][1:])  # last row F
