"""Tests for repro.scoring.scheme."""

import numpy as np
import pytest

from repro.errors import ScoringError
from repro.scoring import ScoringScheme, affine_gap, dna_simple, linear_gap


class TestScheme:
    def test_proxies(self, dna_scheme):
        assert dna_scheme.alphabet == "ACGT"
        assert dna_scheme.is_linear
        assert dna_scheme.gap_open == -6
        assert dna_scheme.gap_extend == -6

    def test_affine_proxies(self, affine_scheme):
        assert not affine_scheme.is_linear
        assert affine_scheme.gap_open == -11
        assert affine_scheme.gap_extend == -2

    def test_encode(self, dna_scheme):
        assert list(dna_scheme.encode("ACGT")) == [0, 1, 2, 3]

    def test_requires_matrix_type(self):
        with pytest.raises(ScoringError):
            ScoringScheme("not a matrix", linear_gap(-1))

    def test_requires_gap_type(self):
        with pytest.raises(ScoringError):
            ScoringScheme(dna_simple(), -10)


class TestBoundaryRow:
    def test_linear(self):
        s = ScoringScheme(dna_simple(), linear_gap(-10))
        assert list(s.boundary_row(4)) == [0, -10, -20, -30, -40]

    def test_affine(self):
        s = ScoringScheme(dna_simple(), affine_gap(-10, -2))
        assert list(s.boundary_row(4)) == [0, -10, -12, -14, -16]

    def test_start_offset(self):
        s = ScoringScheme(dna_simple(), linear_gap(-5))
        assert list(s.boundary_row(2, start=100)) == [100, 95, 90]

    def test_zero_length(self):
        s = ScoringScheme(dna_simple(), linear_gap(-5))
        assert list(s.boundary_row(0)) == [0]

    def test_dtype(self):
        s = ScoringScheme(dna_simple(), linear_gap(-5))
        assert s.boundary_row(3).dtype == np.int64


class TestNegInf:
    def test_headroom(self, dna_scheme):
        ni = dna_scheme.neg_inf()
        # Must survive adding any plausible score without wrapping.
        assert ni + 10 * dna_scheme.matrix.min_score() > np.iinfo(np.int64).min
