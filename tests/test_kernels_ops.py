"""Tests for repro.kernels.ops and antidiag."""

import numpy as np
import pytest

from repro.kernels import KernelInstruments, MemoryMeter, OpCounter, antidiag_matrix, boundary_vectors, sweep_matrix
from repro.kernels.reference import ref_matrix_linear
from tests.conftest import random_dna


class TestOpCounter:
    def test_add_and_reset(self):
        c = OpCounter()
        c.add_cells(10)
        c.add_cells(5)
        assert c.cells == 15
        c.reset()
        assert c.cells == 0


class TestMemoryMeter:
    def test_peak_tracking(self):
        m = MemoryMeter()
        m.alloc(100)
        m.alloc(50)
        m.free(100)
        m.alloc(20)
        assert m.current == 70
        assert m.peak == 150

    def test_unbalanced_free_detected(self):
        m = MemoryMeter()
        m.alloc(10)
        with pytest.raises(ValueError):
            m.free(20)

    def test_reset(self):
        m = MemoryMeter()
        m.alloc(5)
        m.reset()
        assert m.current == 0 and m.peak == 0


class TestInstruments:
    def test_bundle(self):
        inst = KernelInstruments()
        inst.ops.add_cells(3)
        inst.mem.alloc(7)
        inst.reset()
        assert inst.ops.cells == 0 and inst.mem.peak == 0


class TestAntidiag:
    def test_matches_reference(self, rng, dna_scheme):
        table = dna_scheme.matrix.table
        for _ in range(20):
            M, N = rng.integers(0, 15, 2)
            a = dna_scheme.encode(random_dna(rng, M))
            b = dna_scheme.encode(random_dna(rng, N))
            fr, fc = boundary_vectors(M, N, -6)
            H1 = antidiag_matrix(a, b, table, -6, fr, fc)
            H2 = ref_matrix_linear(a, b, table, -6)
            assert np.array_equal(H1, H2)

    def test_matches_row_kernel_with_custom_boundaries(self, rng, dna_scheme):
        table = dna_scheme.matrix.table
        for _ in range(20):
            M, N = rng.integers(1, 12, 2)
            a = dna_scheme.encode(random_dna(rng, M))
            b = dna_scheme.encode(random_dna(rng, N))
            fr = rng.integers(-40, 40, N + 1).astype(np.int64)
            fc = rng.integers(-40, 40, M + 1).astype(np.int64)
            fc[0] = fr[0]
            assert np.array_equal(
                antidiag_matrix(a, b, table, -3, fr, fc),
                sweep_matrix(a, b, table, -3, fr, fc),
            )

    def test_counter(self, dna_scheme):
        a = dna_scheme.encode("ACG")
        b = dna_scheme.encode("AC")
        fr, fc = boundary_vectors(3, 2, -6)
        c = OpCounter()
        antidiag_matrix(a, b, dna_scheme.matrix.table, -6, fr, fc, counter=c)
        assert c.cells == 6

    def test_shape_validation(self, dna_scheme):
        a = dna_scheme.encode("ACG")
        with pytest.raises(ValueError):
            antidiag_matrix(a, a, dna_scheme.matrix.table, -6,
                            np.zeros(2, np.int64), np.zeros(4, np.int64))
