"""Tests for workload generation and the benchmark suite."""

import pytest

from repro.errors import ConfigError
from repro import AlignConfig
from repro.workloads import (
    SUITE,
    dna_pair,
    evolve,
    load_pair,
    protein_pair,
    random_sequence,
    sequence_pair,
    suite_entries,
)


class TestRandomSequence:
    def test_length_and_alphabet(self, rng):
        s = random_sequence(100, "ACGT", rng)
        assert len(s) == 100
        assert set(s.text) <= set("ACGT")

    def test_zero_length(self, rng):
        assert random_sequence(0, "ACGT", rng).is_empty

    def test_negative_length_rejected(self):
        with pytest.raises(ConfigError):
            random_sequence(-1)

    def test_empty_alphabet_rejected(self):
        with pytest.raises(ConfigError):
            random_sequence(10, "")


class TestEvolve:
    def test_zero_rates_identity(self, rng):
        s = random_sequence(200, "ACGT", rng)
        d = evolve(s, sub_rate=0.0, indel_rate=0.0, rng=rng)
        assert d.text == s.text

    def test_substitutions_change_content(self, rng):
        s = random_sequence(500, "ACGT", rng)
        d = evolve(s, sub_rate=0.5, indel_rate=0.0, rng=rng)
        assert len(d) == len(s)
        diffs = sum(1 for x, y in zip(s.text, d.text) if x != y)
        assert 150 < diffs < 350  # ~50%

    def test_indels_change_length(self, rng):
        s = random_sequence(500, "ACGT", rng)
        d = evolve(s, sub_rate=0.0, indel_rate=0.2, rng=rng)
        assert len(d) != len(s) or d.text != s.text

    def test_alphabet_respected(self, rng):
        s = random_sequence(100, "ACGT", rng)
        d = evolve(s, sub_rate=0.9, indel_rate=0.2, rng=rng, alphabet="ACGT")
        assert set(d.text) <= set("ACGT")

    def test_invalid_rates(self, rng):
        s = random_sequence(10, "ACGT", rng)
        with pytest.raises(ConfigError):
            evolve(s, sub_rate=1.5)
        with pytest.raises(ConfigError):
            evolve(s, mean_indel_len=0.5)


class TestPairs:
    def test_deterministic(self):
        a1, b1 = sequence_pair(300, seed=7)
        a2, b2 = sequence_pair(300, seed=7)
        assert a1.text == a2.text and b1.text == b2.text

    def test_different_seeds_differ(self):
        a1, _ = sequence_pair(300, seed=7)
        a2, _ = sequence_pair(300, seed=8)
        assert a1.text != a2.text

    def test_similarity_controlled(self, dna_scheme):
        from repro.core import fastlsa

        a_lo, b_lo = dna_pair(200, divergence=0.05, seed=1)
        a_hi, b_hi = dna_pair(200, divergence=0.5, seed=1)
        s_lo = fastlsa(a_lo, b_lo, dna_scheme, config=AlignConfig(k=2, base_cells=1024)).score
        s_hi = fastlsa(a_hi, b_hi, dna_scheme, config=AlignConfig(k=2, base_cells=1024)).score
        assert s_lo > s_hi

    def test_protein_pair_alphabet(self):
        a, b = protein_pair(100, seed=3)
        assert set(a.text) <= set("ARNDCQEGHILKMFPSTWYV")
        assert set(b.text) <= set("ARNDCQEGHILKMFPSTWYV")


class TestSuite:
    def test_names_unique(self):
        names = [e.name for e in SUITE]
        assert len(names) == len(set(names))

    def test_entries_filter(self):
        small = suite_entries(("tiny",))
        assert all(e.size_class == "tiny" for e in small)
        dna = suite_entries(("tiny", "small"), family="dna")
        assert all(e.family == "dna" for e in dna)

    def test_empty_filter_raises(self):
        with pytest.raises(ConfigError):
            suite_entries(("nonexistent",))

    def test_load_pair_lengths(self):
        a, b = load_pair("dna-0.25k")
        assert len(a) == 256
        assert abs(len(b) - 256) < 80  # indel drift

    def test_load_pair_cached(self):
        p1 = load_pair("dna-0.25k")
        p2 = load_pair("dna-0.25k")
        assert p1 is p2

    def test_unknown_pair(self):
        with pytest.raises(ConfigError):
            load_pair("nope")

    def test_lengths_span_paper_range(self):
        lengths = [e.length for e in SUITE]
        assert min(lengths) <= 300
        assert max(lengths) >= 16384
