"""Heavier consistency stress tests (still seconds-scale).

Structured inputs that historically break alignment implementations —
long homopolymers, tandem repeats, near-duplicate sequences with single
edits at the recursion split points — checked across every algorithm and
both parallel drivers.
"""

from repro.align import check_alignment
from repro import AlignConfig
from repro.baselines import hirschberg, needleman_wunsch
from repro.core import banded_align_auto, fastlsa
from repro.parallel import parallel_fastlsa
from tests.conftest import random_dna

def adversarial_pairs(rng):
    """Inputs that stress tie-breaking, gap runs and split boundaries."""
    base = random_dna(rng, 200)
    yield "homopolymers", "A" * 173, "A" * 131
    yield "tandem vs shifted", "ACGT" * 40, "CGTA" * 40
    yield "repeat expansion", "ACG" * 50, "ACG" * 65
    yield "single edit at middle", base, base[:100] + "T" + base[101:]
    yield "deletion at split", base, base[:97] + base[103:]
    yield "duplicated block", base, base[:120] + base[60:120] + base[120:]
    yield "reversed", base, base[::-1]
    yield "empty vs long", "", base
    yield "one vs long", "G", base


class TestAdversarialInputs:
    def test_all_algorithms_agree(self, rng, dna_scheme):
        for label, a, b in adversarial_pairs(rng):
            scores = {
                "nw": needleman_wunsch(a, b, dna_scheme).score,
                "hb": hirschberg(a, b, dna_scheme, base_cells=64).score,
                "fl2": fastlsa(a, b, dna_scheme, config=AlignConfig(k=2, base_cells=64)).score,
                "fl8": fastlsa(a, b, dna_scheme, config=AlignConfig(k=8, base_cells=256)).score,
            }
            assert len(set(scores.values())) == 1, (label, scores)

    def test_alignments_all_valid(self, rng, dna_scheme):
        for label, a, b in adversarial_pairs(rng):
            al = fastlsa(a, b, dna_scheme, config=AlignConfig(k=3, base_cells=128))
            ok, msg = check_alignment(al, dna_scheme)
            assert ok, (label, msg)

    def test_banded_auto_converges(self, rng, dna_scheme):
        for label, a, b in adversarial_pairs(rng):
            res = banded_align_auto(a, b, dna_scheme, initial_width=4)
            nw = needleman_wunsch(a, b, dna_scheme)
            assert res.alignment.score == nw.score, label

    def test_threaded_parity(self, rng, dna_scheme):
        for label, a, b in adversarial_pairs(rng):
            seq = fastlsa(a, b, dna_scheme, config=AlignConfig(k=3, base_cells=128))
            par = parallel_fastlsa(a, b, dna_scheme, P=4, config=AlignConfig(k=3, base_cells=128))
            assert par.score == seq.score, label
            assert par.gapped_a == seq.gapped_a, label


class TestThreadedRepeatability:
    def test_many_runs_identical(self, rng, dna_scheme):
        """Races would show up as run-to-run divergence."""
        a, b = random_dna(rng, 400), random_dna(rng, 400)
        baseline = fastlsa(a, b, dna_scheme, config=AlignConfig(k=4, base_cells=1024))
        for _ in range(5):
            par = parallel_fastlsa(a, b, dna_scheme, P=8, config=AlignConfig(k=4, base_cells=1024))
            assert par.score == baseline.score
            assert par.gapped_a == baseline.gapped_a
            assert par.gapped_b == baseline.gapped_b

    def test_affine_many_runs_identical(self, rng, affine_scheme):
        from tests.conftest import random_protein

        a = random_protein(rng, 250)
        b = random_protein(rng, 260)
        baseline = fastlsa(a, b, affine_scheme, config=AlignConfig(k=3, base_cells=512))
        for _ in range(3):
            par = parallel_fastlsa(a, b, affine_scheme, P=6, config=AlignConfig(k=3, base_cells=512))
            assert par.score == baseline.score
            assert par.gapped_a == baseline.gapped_a
