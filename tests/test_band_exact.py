"""Property tests for the exact banded fast path (PR 8 tentpole).

The contract under test: with ``band="auto"`` (or any initial width) the
result is *bit-identical* to full DP — same score AND same gapped
strings — because the verify-or-widen loop only accepts a band once the
escape-bound certificate proves every optimal path stays inside it, and
in-band traceback uses the same tie-break order as the dense kernels.

Adversarial cases deliberately force the first band(s) to fail so the
widening loop is exercised, including compensating-indel pairs whose
optimal path leaves any narrow band.
"""

import numpy as np
import pytest

from repro import AlignConfig
from repro.baselines import needleman_wunsch
from repro.core import fastlsa
from repro.core.banded import (
    banded_align_exact,
    banded_score,
    escape_bound,
)
from repro.errors import ConfigError
from repro.scoring import ScoringScheme, affine_gap, dna_simple, linear_gap
from repro.workloads import dna_pair

from tests.conftest import random_dna


SCHEMES = {
    "linear": ScoringScheme(dna_simple(), linear_gap(-6)),
    "affine": ScoringScheme(dna_simple(), affine_gap(-8, -1)),
}


def _assert_bit_identical(res, a, b, scheme):
    """res (BandedResult or Alignment-producing) vs dense NW reference."""
    ref = needleman_wunsch(a, b, scheme)
    al = res.alignment if hasattr(res, "alignment") else res
    assert al.score == ref.score
    assert al.gapped_a == ref.gapped_a
    assert al.gapped_b == ref.gapped_b


class TestCertifiedBandMatchesFullDP:
    @pytest.mark.parametrize("kind", ["linear", "affine"])
    def test_similar_pairs_certify_in_band(self, kind):
        scheme = SCHEMES[kind]
        a, b = dna_pair(400, divergence=0.05, seed=11)
        res = banded_align_exact(a.text, b.text, scheme, band="auto")
        assert res.certified
        assert res.tier == "banded"
        _assert_bit_identical(res, a.text, b.text, scheme)

    @pytest.mark.parametrize("kind", ["linear", "affine"])
    def test_random_pairs_differential(self, rng, kind):
        scheme = SCHEMES[kind]
        for _ in range(8):
            m = int(rng.integers(5, 120))
            n = int(rng.integers(5, 120))
            a, b = random_dna(rng, m), random_dna(rng, n)
            res = banded_align_exact(a, b, scheme, band="auto")
            assert res.certified
            _assert_bit_identical(res, a, b, scheme)

    @pytest.mark.parametrize("kind", ["linear", "affine"])
    def test_low_similarity_pairs_still_exact(self, rng, kind):
        """Unrelated sequences rarely certify in a narrow band; the loop
        must widen (or cross over to full DP) and still be exact."""
        scheme = SCHEMES[kind]
        for _ in range(4):
            a, b = random_dna(rng, 90), random_dna(rng, 85)
            res = banded_align_exact(a, b, scheme, band=4)
            assert res.certified
            _assert_bit_identical(res, a, b, scheme)


class TestWideningRegression:
    """First band fails -> widening recovers bit-identical results.

    Equal-length pair with compensating indels: both carry the same
    50-symbol block, but at position 200 in ``a`` and position 0 in
    ``b``.  The optimal path must drift ~50 diagonals off the
    corner-to-corner corridor and back, so no band with half-width < ~50
    can certify — the loop is forced through several doublings.
    (A plain insertion would NOT work: the band always covers the
    diagonal range between the two corners.)
    """

    @staticmethod
    def _compensating_pair():
        base_a, _ = dna_pair(400, divergence=0.03, seed=23)
        ins = "ACGTACGTAC" * 5  # 50 symbols
        a = base_a.text[:200] + ins + base_a.text[200:]
        b = ins + base_a.text
        return a, b

    @pytest.mark.parametrize("kind", ["linear", "affine"])
    def test_widening_recovers_exactness(self, kind):
        scheme = SCHEMES[kind]
        a, b = self._compensating_pair()
        res = banded_align_exact(a, b, scheme, band=8)
        assert res.certified
        assert res.attempts >= 2, "test must actually exercise widening"
        assert res.width > 8
        _assert_bit_identical(res, a, b, scheme)

    @pytest.mark.parametrize("kind", ["linear", "affine"])
    def test_banded_score_widens_to_exact_score(self, kind):
        scheme = SCHEMES[kind]
        a, b = self._compensating_pair()
        sc = banded_score(a, b, scheme, band=8)
        assert sc.score == needleman_wunsch(a, b, scheme).score
        assert sc.attempts >= 2

    def test_uncertified_narrow_band_wrong_then_fixed(self):
        """Sanity: a fixed narrow band really does miss the optimum here
        (otherwise the regression above tests nothing)."""
        from repro.core.banded import banded_align

        scheme = SCHEMES["linear"]
        a, b = self._compensating_pair()
        narrow = banded_align(a, b, scheme, width=8)
        ref = needleman_wunsch(a, b, scheme)
        assert narrow.alignment.score < ref.score
        bound = escape_bound(len(a), len(b), 8, scheme)
        assert bound is not None and narrow.alignment.score <= bound


class TestFastLSABandConfig:
    @pytest.mark.parametrize("kind", ["linear", "affine"])
    @pytest.mark.parametrize("band", ["auto", 16])
    def test_band_config_bit_identical_to_default(self, kind, band):
        scheme = SCHEMES[kind]
        a, b = dna_pair(300, divergence=0.08, seed=5)
        plain = fastlsa(a, b, scheme)
        banded = fastlsa(a, b, scheme, config=AlignConfig(band=band))
        assert banded.score == plain.score
        assert banded.gapped_a == plain.gapped_a
        assert banded.gapped_b == plain.gapped_b
        ref = needleman_wunsch(a, b, scheme)
        assert banded.gapped_a == ref.gapped_a
        assert banded.gapped_b == ref.gapped_b

    def test_band_hit_recorded_in_stats_and_algorithm(self):
        scheme = SCHEMES["linear"]
        a, b = dna_pair(500, divergence=0.03, seed=9)
        al = fastlsa(a, b, scheme, config=AlignConfig(band="auto"))
        assert al.algorithm.startswith("fastlsa+banded(")
        assert al.stats.band_width > 0
        assert al.stats.kernel in ("numpy", "compiled")

    def test_band_give_up_falls_back_to_recursion(self, rng):
        """Unrelated pair: the in-fastlsa give-up cap stops widening and
        the normal linear-space recursion still returns the optimum."""
        scheme = SCHEMES["linear"]
        a, b = random_dna(rng, 300), random_dna(rng, 300)
        al = fastlsa(a, b, scheme, config=AlignConfig(band=4))
        ref = needleman_wunsch(a, b, scheme)
        assert al.score == ref.score
        assert al.gapped_a == ref.gapped_a

    def test_band_with_ends_free_core(self):
        """band/kernel config flows through to the bracketed ends-free
        core's FastLSA run without changing the result."""
        from repro.core.modes import EndsFree, ends_free_align

        scheme = SCHEMES["linear"]
        ref_a, _ = dna_pair(240, divergence=0.05, seed=31)
        read = ref_a.text[60:180]
        free = EndsFree(b_start=True, b_end=True)
        plain = ends_free_align(read, ref_a.text, scheme, free)
        banded = ends_free_align(read, ref_a.text, scheme, free,
                                 config=AlignConfig(band="auto"))
        assert banded.score == plain.score
        assert banded.alignment.gapped_a == plain.alignment.gapped_a
        assert (banded.a_start, banded.a_end, banded.b_start, banded.b_end) == \
            (plain.a_start, plain.a_end, plain.b_start, plain.b_end)

    def test_batch_quick_score_with_band(self, rng):
        from repro.core.batch import batch_align

        scheme = SCHEMES["linear"]
        base, _ = dna_pair(200, divergence=0.05, seed=41)
        targets = [dna_pair(200, divergence=d, seed=43 + i)[1].text
                   for i, d in enumerate((0.02, 0.1, 0.3))]
        plain = batch_align(base.text, targets, scheme, mode="global", keep=3)
        banded = batch_align(base.text, targets, scheme, mode="global", keep=3,
                             config=AlignConfig(band="auto"))
        assert [(h.score, h.rank) for h in plain] == \
            [(h.score, h.rank) for h in banded]

    def test_bad_band_rejected(self):
        with pytest.raises(ConfigError):
            AlignConfig(band=0)
        with pytest.raises(ConfigError):
            AlignConfig(band="narrow")


class TestEscapeBound:
    def test_trivially_certified_when_band_covers_matrix(self):
        scheme = SCHEMES["linear"]
        assert escape_bound(10, 10, 10, scheme) is None
        assert escape_bound(10, 10, 12, scheme) is None

    def test_bound_is_monotone_in_width(self):
        scheme = SCHEMES["linear"]
        bounds = [escape_bound(200, 200, w, scheme) for w in (4, 8, 16, 32)]
        assert all(b is not None for b in bounds)
        # wider band -> escaping costs more gap moves -> bound decreases
        assert bounds == sorted(bounds, reverse=True)
        assert len(set(bounds)) == len(bounds)

    def test_bound_actually_bounds_escaping_paths(self):
        """Empirical soundness check: for random pairs, any time full DP
        beats the bound, the banded result at that width is already
        optimal (the certificate's contrapositive)."""
        rng = np.random.default_rng(7)
        scheme = SCHEMES["linear"]
        from repro.core.banded import banded_align

        for _ in range(10):
            m = int(rng.integers(8, 60))
            n = int(rng.integers(8, 60))
            a = "".join(rng.choice(list("ACGT"), size=m))
            b = "".join(rng.choice(list("ACGT"), size=n))
            w = int(rng.integers(1, 8))
            bound = escape_bound(m, n, w, scheme)
            res = banded_align(a, b, scheme, width=w)
            ref = needleman_wunsch(a, b, scheme)
            if bound is None or res.alignment.score > bound:
                assert res.alignment.score == ref.score
