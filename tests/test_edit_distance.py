"""Tests for the edit-distance reduction."""

import pytest

from repro import AlignConfig
from repro.align.edit_distance import (
    edit_distance,
    edit_distance_alignment,
    unit_cost_scheme,
)
from repro.errors import ConfigError
from tests.conftest import random_dna


def reference_levenshtein(a: str, b: str) -> int:
    """Textbook quadratic DP."""
    m, n = len(a), len(b)
    prev = list(range(n + 1))
    for i in range(1, m + 1):
        cur = [i] + [0] * n
        for j in range(1, n + 1):
            cur[j] = min(
                prev[j - 1] + (a[i - 1] != b[j - 1]),
                prev[j] + 1,
                cur[j - 1] + 1,
            )
        prev = cur
    return prev[n]


class TestEditDistance:
    def test_known_values(self):
        assert edit_distance("kitten", "sitting") == 3
        assert edit_distance("flaw", "lawn") == 2
        assert edit_distance("", "") == 0
        assert edit_distance("abc", "") == 3
        assert edit_distance("", "abc") == 3
        assert edit_distance("same", "same") == 0

    def test_matches_reference(self, rng):
        for _ in range(30):
            a = random_dna(rng, int(rng.integers(0, 30)))
            b = random_dna(rng, int(rng.integers(0, 30)))
            assert edit_distance(a, b) == reference_levenshtein(a, b), (a, b)

    def test_metric_properties(self, rng):
        a, b, c = (random_dna(rng, 15) for _ in range(3))
        assert edit_distance(a, a) == 0
        assert edit_distance(a, b) == edit_distance(b, a)
        assert edit_distance(a, c) <= edit_distance(a, b) + edit_distance(b, c)

    def test_explicit_alphabet(self):
        assert edit_distance("ab", "ba", alphabet="abc") == 2

    def test_empty_alphabet_rejected(self):
        with pytest.raises(ConfigError):
            unit_cost_scheme("")


class TestEditScript:
    def test_distance_and_script_agree(self, rng):
        for _ in range(10):
            a = random_dna(rng, int(rng.integers(1, 25)))
            b = random_dna(rng, int(rng.integers(1, 25)))
            dist, alignment = edit_distance_alignment(a, b, config=AlignConfig(k=2, base_cells=16))
            assert dist == reference_levenshtein(a, b)
            # Count edits directly from the columns.
            edits = sum(
                1 for ca, cb in alignment.columns() if ca != cb
            )
            assert edits == dist

    def test_kitten_script(self):
        dist, alignment = edit_distance_alignment("kitten", "sitting")
        assert dist == 3
        assert alignment.gapped_a.replace("-", "") == "kitten"

    def test_linear_space_at_scale(self, rng):
        a = random_dna(rng, 3000)
        b = random_dna(rng, 3000)
        dist, alignment = edit_distance_alignment(a, b, config=AlignConfig(k=4, base_cells=4096))
        assert alignment.stats.peak_cells_resident < (3000 * 3000) / 100
        assert dist == -alignment.score
