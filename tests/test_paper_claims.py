"""The paper's headline claims, asserted at unit-test scale.

Each test mirrors one claim from the paper's abstract/introduction (the
benchmark harness re-checks them at larger scale — see EXPERIMENTS.md).
Kept in the unit suite so a plain ``pytest tests/`` already certifies the
reproduction's qualitative results.
"""

import pytest

from repro.baselines import hirschberg, needleman_wunsch
from repro.core import fastlsa
from repro import AlignConfig
from repro.core.planner import ops_ratio_bound, plan_alignment
from repro.parallel import simulated_parallel_fastlsa, wt_bound
from repro.scoring import paper_scheme
from repro.workloads import dna_pair


@pytest.fixture(scope="module")
def pair():
    return dna_pair(600, divergence=0.25, seed=99)


@pytest.fixture(scope="module")
def scheme():
    from repro.scoring import ScoringScheme, dna_simple, linear_gap

    return ScoringScheme(dna_simple(), linear_gap(-6))


class TestSection1Claims:
    def test_worked_example_scores_82(self):
        """Sections 1-2: TLDKLLKD / TDVLKAD under Table 1, gap -10 -> 82."""
        assert fastlsa("TLDKLLKD", "TDVLKAD", paper_scheme()).score == 82

    def test_fm_quadratic_space(self, pair, scheme):
        """'calculations requiring O(m x n) space can be prohibitive'."""
        a, b = pair
        nw = needleman_wunsch(a, b, scheme)
        assert nw.stats.peak_cells_resident == (len(a) + 1) * (len(b) + 1)

    def test_hirschberg_doubles_operations(self, pair, scheme):
        """'the number of operations approximately doubles' (Section 1)."""
        a, b = pair
        hb = hirschberg(a, b, scheme, base_cells=256)
        ratio = hb.stats.cells_computed / (len(a) * len(b))
        assert 1.8 <= ratio <= 2.2

    def test_fastlsa_linear_space_1_5x(self, pair, scheme):
        """'At one extreme, FastLSA uses linear space with approximately
        1.5 times the number of operations required by the FM
        algorithms.'"""
        a, b = pair
        fl = fastlsa(a, b, scheme, config=AlignConfig(k=2, base_cells=256))
        ratio = fl.stats.cells_computed / (len(a) * len(b))
        assert 1.3 <= ratio <= 1.7
        # and the space really is linear-ish
        assert fl.stats.peak_cells_resident < 30 * (len(a) + len(b))

    def test_fastlsa_quadratic_space_no_extra_ops(self, pair, scheme):
        """'At the other extreme, FastLSA uses quadratic space with no
        extra operations.'"""
        a, b = pair
        fl = fastlsa(a, b, scheme, config=AlignConfig(base_cells=10**7))
        assert fl.stats.cells_computed == len(a) * len(b)


class TestSection3Claims:
    def test_adaptivity(self, pair, scheme):
        """'FastLSA can effectively adapt to use either linear or
        quadratic space' — the planner walks the whole range and every
        budget is honoured."""
        a, b = pair
        ratios = []
        for budget in (15_000, 60_000, 10**6):
            plan = plan_alignment(len(a), len(b), budget)
            fl = fastlsa(a, b, scheme, config=plan.config)
            assert fl.stats.peak_cells_resident <= budget
            ratios.append(fl.stats.cells_computed / (len(a) * len(b)))
        assert ratios == sorted(ratios, reverse=True)

    def test_ops_bound_formula(self, pair, scheme):
        """Measured operations never exceed the (k+1)/(k-1) analysis."""
        a, b = pair
        for k in (2, 3, 4, 8):
            fl = fastlsa(a, b, scheme, config=AlignConfig(k=k, base_cells=256))
            assert fl.stats.cells_computed / (len(a) * len(b)) <= ops_ratio_bound(k) + 0.05


class TestSection56Claims:
    def test_almost_linear_speedup_to_8(self, pair, scheme):
        """Abstract: 'good speedups, almost linear for 8 processors or
        less'."""
        a, b = pair
        _, rep = simulated_parallel_fastlsa(a, b, scheme, P=8, k=6, base_cells=8192)
        assert rep.speedup >= 0.8 * 8

    def test_efficiency_grows_with_size(self, scheme):
        """Abstract: 'the efficiency of Parallel FastLSA increases with
        the size of the sequences'."""
        effs = []
        for n in (150, 1200):
            a, b = dna_pair(n, divergence=0.25, seed=5)
            _, rep = simulated_parallel_fastlsa(
                a, b, scheme, P=8, k=6, base_cells=8192, overhead=100
            )
            effs.append(rep.efficiency)
        assert effs[1] > effs[0]

    def test_theorem4_bound(self, pair, scheme):
        """Eq. 36 upper-bounds the simulated parallel time."""
        a, b = pair
        for P in (2, 4, 8):
            _, rep = simulated_parallel_fastlsa(
                a, b, scheme, P=P, k=6, base_cells=8192, overhead=0
            )
            assert rep.par_time <= wt_bound(len(a), len(b), 6, P, rep.u, rep.v)

    def test_all_algorithms_same_optimum(self, pair, scheme):
        """All algorithms 'produce exactly the same optimal alignment
        score for a given scoring function' (Section 2)."""
        a, b = pair
        scores = {
            needleman_wunsch(a, b, scheme).score,
            hirschberg(a, b, scheme).score,
            fastlsa(a, b, scheme, config=AlignConfig(k=2, base_cells=256)).score,
            fastlsa(a, b, scheme, config=AlignConfig(k=8, base_cells=4096)).score,
        }
        assert len(scores) == 1
