"""Tests for matrix file I/O and ambiguity-code extension."""

import io

import pytest

from repro.errors import ScoringError
from repro import AlignConfig
from repro.scoring import (
    blosum62,
    dna_simple,
    dna_with_n,
    format_matrix,
    parse_matrix,
    protein_with_x,
    read_matrix,
    with_ambiguity,
    write_matrix,
)

SAMPLE = """# comment line
   A  C  G  T
A  5 -4 -4 -4
C -4  5 -4 -4
G -4 -4  5 -4
T -4 -4 -4  5
"""


class TestParse:
    def test_basic(self):
        m = parse_matrix(io.StringIO(SAMPLE), name="sample")
        assert m.alphabet == "ACGT"
        assert m.score("A", "A") == 5
        assert m.score("A", "T") == -4

    def test_row_order_independent(self):
        shuffled = """   A  C
C  1  7
A  5  1
"""
        m = parse_matrix(io.StringIO(shuffled))
        assert m.score("A", "A") == 5
        assert m.score("C", "C") == 7
        assert m.score("A", "C") == 1

    def test_missing_row_rejected(self):
        with pytest.raises(ScoringError, match="missing"):
            parse_matrix(io.StringIO("   A  C\nA  1  0\n"))

    def test_extra_row_rejected(self):
        bad = "   A\nA 1\nG 2\n"
        with pytest.raises(ScoringError):
            parse_matrix(io.StringIO(bad))

    def test_bad_score_rejected(self):
        with pytest.raises(ScoringError, match="non-integer"):
            parse_matrix(io.StringIO("   A\nA x\n"))

    def test_wrong_row_length_rejected(self):
        with pytest.raises(ScoringError):
            parse_matrix(io.StringIO("   A  C\nA 1\nC 1 1\n"))

    def test_empty_stream_rejected(self):
        with pytest.raises(ScoringError, match="no header"):
            parse_matrix(io.StringIO("# only comments\n"))

    def test_duplicate_header_rejected(self):
        with pytest.raises(ScoringError):
            parse_matrix(io.StringIO("  A A\nA 1 1\n"))


class TestRoundtrip:
    def test_blosum62_roundtrip(self, tmp_path):
        path = tmp_path / "blosum62.mat"
        original = blosum62()
        write_matrix(path, original, comment="round trip test")
        loaded = read_matrix(path)
        assert loaded.alphabet == original.alphabet
        import numpy as np

        assert np.array_equal(loaded.table, original.table)

    def test_format_contains_name(self):
        text = format_matrix(dna_simple())
        assert "# Matrix:" in text


class TestAmbiguity:
    def test_n_scores_are_means(self):
        m = dna_with_n()
        # N vs A = mean(5, -4, -4, -4) = -1.75 -> -2.
        assert m.score("N", "A") == -2
        # N vs N = mean over 16 pairs = (4*5 + 12*(-4))/16 = -1.75 -> -2.
        assert m.score("N", "N") == -2

    def test_full_iupac(self):
        m = dna_with_n(full_iupac=True)
        assert set("RYSWKMBDHVN") <= set(m.alphabet)
        # R = {A,G}: R vs A = mean(5, -4) = 0.5 -> round-half-even 0.
        assert m.score("R", "A") in (0, 1)
        # R vs R = mean over {A,G}x{A,G} = (5 - 4 - 4 + 5)/4 = 0.5.
        assert m.score("R", "R") in (0, 1)

    def test_protein_x(self):
        m = protein_with_x()
        assert "X" in m.alphabet
        # X vs anything is a small negative (BLOSUM62 column means are < 0).
        assert m.score("X", "W") < 0

    def test_alignment_with_ns(self):
        from repro.core import fastlsa
        from repro.scoring import ScoringScheme, linear_gap

        scheme = ScoringScheme(dna_with_n(), linear_gap(-6))
        al = fastlsa("ACGNNACGT", "ACGTTACGT", scheme, config=AlignConfig(k=2, base_cells=16))
        assert al.score > 0

    def test_symbol_conflict_rejected(self):
        with pytest.raises(ScoringError):
            with_ambiguity(dna_simple(), {"A": "CG"})

    def test_unknown_member_rejected(self):
        with pytest.raises(ScoringError):
            with_ambiguity(dna_simple(), {"N": "ACGZ"})

    def test_empty_members_rejected(self):
        with pytest.raises(ScoringError):
            with_ambiguity(dna_simple(), {"N": ""})

    def test_symmetry_preserved(self):
        import numpy as np

        m = dna_with_n(full_iupac=True)
        assert np.array_equal(m.table, m.table.T)
