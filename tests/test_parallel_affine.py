"""Affine-gap coverage of the parallel machinery.

The affine grid caches carry gap-state vectors across tile boundaries;
these tests make sure the threaded wavefront and the simulated machine
handle them at scales that force multi-level recursion and every tile
topology (interior, edge, corner, skipped-neighbour).
"""

import numpy as np
import pytest

from repro.align import check_alignment
from repro import AlignConfig
from repro.core import Grid, fastlsa, fill_grid
from repro.core.fastlsa import initial_problem
from repro.parallel import parallel_fastlsa, simulated_parallel_fastlsa
from repro.parallel.pfastlsa import _parallel_fill_grid
from tests.conftest import random_protein


class TestParallelFillAffine:
    @pytest.mark.parametrize("u,v", [(1, 1), (2, 2), (2, 3)])
    def test_threaded_fill_matches_sequential(self, rng, affine_scheme, u, v):
        scheme = affine_scheme
        m = n = 60
        a = random_protein(rng, m)
        b = random_protein(rng, n)
        ac, bc = scheme.encode(a), scheme.encode(b)

        g_seq = Grid(initial_problem(m, n, scheme), 3, affine=True)
        fill_grid(g_seq, ac, bc, scheme)
        g_par = Grid(initial_problem(m, n, scheme), 3, affine=True)
        _parallel_fill_grid(g_par, ac, bc, scheme, None, True, P=4, u=u, v=v)

        for p in range(1, len(g_seq.row_bounds) - 1):
            ls, lp = g_seq.row_line(p, 0, n), g_par.row_line(p, 0, n)
            assert np.array_equal(ls.h, lp.h), f"row {p} H"
            assert np.array_equal(ls.f[1:], lp.f[1:]), f"row {p} F"
        for q in range(1, len(g_seq.col_bounds) - 1):
            ls, lp = g_seq.col_line(q, 0, m), g_par.col_line(q, 0, m)
            assert np.array_equal(ls.h, lp.h), f"col {q} H"
            assert np.array_equal(ls.e[1:], lp.e[1:]), f"col {q} E"

    def test_tile_edges_carry_gap_state(self, rng, affine_scheme):
        """A gap run longer than a tile must survive tile hand-off."""
        scheme = affine_scheme
        a = "A" * 50  # forces a 40-residue vertical run somewhere
        b = "A" * 10
        seq = fastlsa(a, b, scheme, config=AlignConfig(k=2, base_cells=36))
        par = parallel_fastlsa(a, b, scheme, P=3, config=AlignConfig(k=2, base_cells=36), u=3, v=3)
        assert par.score == seq.score
        assert par.gapped_a == seq.gapped_a


class TestParallelDriversAffine:
    def test_threaded_multi_level_recursion(self, rng, affine_scheme):
        a = random_protein(rng, 200)
        b = random_protein(rng, 190)
        seq = fastlsa(a, b, affine_scheme, config=AlignConfig(k=3, base_cells=200))
        par = parallel_fastlsa(a, b, affine_scheme, P=4, config=AlignConfig(k=3, base_cells=200))
        assert par.score == seq.score
        assert check_alignment(par, affine_scheme)[0]
        assert seq.stats.recursion_depth >= 3  # multi-level exercised

    def test_simulated_affine_speedup_shape(self, rng, affine_scheme):
        a = random_protein(rng, 300)
        b = random_protein(rng, 300)
        prev = 0.0
        for P in (1, 2, 4, 8):
            al, rep = simulated_parallel_fastlsa(
                a, b, affine_scheme, P=P, k=4, base_cells=2048
            )
            assert check_alignment(al, affine_scheme)[0]
            assert rep.speedup >= prev - 1e-9
            prev = rep.speedup
        assert prev >= 0.7 * 8

    def test_affine_parity_with_tiny_tiles(self, rng, affine_scheme):
        """Tiles of a few cells stress the corner-sentinel conventions."""
        a = random_protein(rng, 40)
        b = random_protein(rng, 37)
        seq = fastlsa(a, b, affine_scheme, config=AlignConfig(k=2, base_cells=36))
        par = parallel_fastlsa(a, b, affine_scheme, P=2, config=AlignConfig(k=2, base_cells=36), u=4, v=4)
        assert par.score == seq.score
