"""Tests for repro.align.alignment."""

import pytest

from repro.align import Alignment, AlignmentPath, AlignmentStats, Sequence, alignment_from_path
from repro.errors import AlignmentError


def make_alignment():
    return Alignment(
        seq_a=Sequence("ACG", name="a"),
        seq_b=Sequence("AG", name="b"),
        gapped_a="ACG",
        gapped_b="A-G",
        score=6,
    )


class TestAlignment:
    def test_basic(self):
        al = make_alignment()
        assert len(al) == 3
        assert al.num_matches == 2
        assert al.num_mismatches == 0
        assert al.num_gap_columns == 1
        assert al.identity == pytest.approx(2 / 3)

    def test_columns(self):
        al = make_alignment()
        assert list(al.columns()) == [("A", "A"), ("C", "-"), ("G", "G")]

    def test_length_mismatch_rejected(self):
        with pytest.raises(AlignmentError):
            Alignment(
                seq_a=Sequence("A", name="a"),
                seq_b=Sequence("A", name="b"),
                gapped_a="A-",
                gapped_b="A",
                score=0,
            )

    def test_spelling_checked(self):
        with pytest.raises(AlignmentError):
            Alignment(
                seq_a=Sequence("AC", name="a"),
                seq_b=Sequence("AC", name="b"),
                gapped_a="AG",
                gapped_b="AC",
                score=0,
            )

    def test_gap_gap_column_rejected(self):
        with pytest.raises(AlignmentError):
            Alignment(
                seq_a=Sequence("A", name="a"),
                seq_b=Sequence("A", name="b"),
                gapped_a="-A",
                gapped_b="-A",
                score=0,
            )

    def test_mismatch_counting(self):
        al = Alignment(
            seq_a=Sequence("AC", name="a"),
            seq_b=Sequence("AG", name="b"),
            gapped_a="AC",
            gapped_b="AG",
            score=1,
        )
        assert al.num_mismatches == 1
        assert al.num_matches == 1


class TestStats:
    def test_defaults(self):
        s = AlignmentStats()
        assert s.cells_computed == 0 and s.wall_time == 0.0

    def test_merge(self):
        s1 = AlignmentStats(cells_computed=10, peak_cells_resident=5, recursion_depth=2)
        s2 = AlignmentStats(cells_computed=7, peak_cells_resident=9, recursion_depth=1,
                            subproblems=3, wall_time=0.5)
        s1.merge(s2)
        assert s1.cells_computed == 17
        assert s1.peak_cells_resident == 9
        assert s1.recursion_depth == 2
        assert s1.subproblems == 3


class TestFromPath:
    def test_all_move_kinds(self):
        path = AlignmentPath([(0, 0), (1, 1), (2, 1), (2, 2)])
        al = alignment_from_path("AC", "GT", path, score=0)
        assert al.gapped_a == "AC-"
        assert al.gapped_b == "G-T"

    def test_incomplete_path_rejected(self):
        path = AlignmentPath([(0, 0), (1, 1)])
        with pytest.raises(AlignmentError):
            alignment_from_path("AC", "GT", path, score=0)

    def test_empty_sequences(self):
        al = alignment_from_path("", "", AlignmentPath([(0, 0)]), score=0)
        assert len(al) == 0
        assert al.identity == 1.0

    def test_all_gaps_one_side(self):
        path = AlignmentPath([(0, 0), (0, 1), (0, 2)])
        al = alignment_from_path("", "GT", path, score=-12)
        assert al.gapped_a == "--"
        assert al.gapped_b == "GT"
