"""Service-level autotuning wiring (PR 9 tentpole).

``tune="auto"`` is the service default: unpinned jobs consult the
calibration profile at admission, so the governor sees (and bills) the
tuned backend.  These tests drive the precedence chain — explicit job
config > operator ``default_backend`` > tuned choice > serial — and the
inert fallback on uncalibrated hosts, against real job execution.
"""

from __future__ import annotations

import asyncio

from repro import align
from repro.core.config import AlignConfig
from repro.service import AlignmentService
from repro.tune import choose, synthetic_profile
from repro.workloads import dna_pair


def _run(coro):
    return asyncio.run(coro)


def _pair(n=600, seed=7):
    return dna_pair(n, divergence=0.2, seed=seed)


class TestTunedAdmission:
    def test_auto_without_cache_is_inert(self, dna_scheme):
        async def run():
            async with AlignmentService(memory_cells=50_000_000) as svc:
                assert svc.tune == "auto"
                assert svc.tune_profile is None
                a, b = _pair()
                job = await svc.submit(a, b, dna_scheme)
                result = await job.future
                return job, result

        job, result = _run(run())
        # No profile: nothing was pinned, the job ran as before PR 9.
        assert getattr(job.plan.config, "backend", None) is None
        a, b = _pair()
        assert result.score == align(a, b, dna_scheme).score

    def test_profile_pins_tuned_backend_at_admission(self, dna_scheme):
        profile = synthetic_profile("fast-8cpu")
        a, b = _pair()
        expected = choose(profile, len(a), len(b))

        async def run():
            async with AlignmentService(
                memory_cells=50_000_000, tune=profile
            ) as svc:
                job = await svc.submit(a, b, dna_scheme)
                return job, await job.future

        job, result = _run(run())
        assert job.plan.config.backend == expected.backend
        if expected.backend != "serial":
            assert job.plan.config.max_workers == expected.workers
        assert result.score == align(a, b, dna_scheme).score

    def test_slow_host_profile_stays_serial(self, dna_scheme):
        async def run():
            async with AlignmentService(
                memory_cells=50_000_000, tune=synthetic_profile("slow-1cpu")
            ) as svc:
                a, b = _pair()
                job = await svc.submit(a, b, dna_scheme)
                await job.future
                return job

        job = _run(run())
        assert job.plan.config.backend == "serial"
        assert job.plan.config.max_workers is None

    def test_explicit_job_backend_beats_tune(self, dna_scheme):
        async def run():
            async with AlignmentService(
                memory_cells=50_000_000, tune=synthetic_profile("fast-8cpu")
            ) as svc:
                a, b = _pair()
                job = await svc.submit(
                    a, b, dna_scheme,
                    config=AlignConfig(backend="serial"),
                )
                await job.future
                return job

        job = _run(run())
        assert job.plan.config.backend == "serial"

    def test_operator_default_backend_beats_tune(self, dna_scheme):
        async def run():
            async with AlignmentService(
                memory_cells=50_000_000,
                default_backend="threads",
                backend_workers=2,
                tune=synthetic_profile("slow-1cpu"),  # says: serial!
            ) as svc:
                a, b = _pair()
                job = await svc.submit(a, b, dna_scheme)
                await job.future
                return job

        job = _run(run())
        # The operator pinned threads explicitly; tuning must not undo it.
        assert job.plan.config.backend == "threads"

    def test_per_job_tune_off_opts_out(self, dna_scheme):
        async def run():
            async with AlignmentService(
                memory_cells=50_000_000, tune=synthetic_profile("fast-8cpu")
            ) as svc:
                a, b = _pair()
                job = await svc.submit(
                    a, b, dna_scheme, config=AlignConfig(tune="off")
                )
                await job.future
                return job

        job = _run(run())
        assert getattr(job.plan.config, "backend", None) is None

    def test_stats_surface_tune_state(self):
        async def run():
            async with AlignmentService(
                memory_cells=50_000_000, tune=synthetic_profile("fast-8cpu")
            ) as svc:
                return svc.stats()

        stats = _run(run())
        assert stats["tune"] == "profile"
        assert stats["tune_profile_loaded"] is True

        async def run_off():
            async with AlignmentService(
                memory_cells=50_000_000, tune="off"
            ) as svc:
                return svc.stats()

        stats = _run(run_off())
        assert stats["tune"] == "off"
        assert stats["tune_profile_loaded"] is False
