"""Tests for the sharded service tier: ring, admission, router.

The expensive multi-process cases (shard kill, cross-shard stats) fork
real shard processes; the ring and admission controller are unit-tested
in-process.  The headline property is the differential one: a shard
dying mid-burst must never change an answer — rerouted jobs replay on a
surviving shard and come back bit-identical to the serial reference.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.baselines import needleman_wunsch
from repro.errors import ConfigError, ConnectionLostError, QueueFullError
from repro.faults import runtime as faults
from repro.faults.plan import named_plan
from repro.scoring import ScoringScheme, dna_simple, linear_gap
from repro.service import (
    AdmissionController,
    AlignmentService,
    HashRing,
    ProtocolHandler,
    ShardRouter,
    TenantQuota,
)
from repro.workloads import dna_pair


@pytest.fixture
def scheme():
    return ScoringScheme(dna_simple(), linear_gap(-6))


@pytest.fixture(autouse=True)
def _no_global_plan():
    faults.disable()
    yield
    faults.disable()


def _run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=120))


class TestHashRing:
    def test_lookup_is_deterministic_and_total(self):
        ring = HashRing()
        for shard in range(4):
            ring.add(shard)
        keys = [f"key-{i}" for i in range(200)]
        first = [ring.lookup(k) for k in keys]
        assert first == [ring.lookup(k) for k in keys]
        assert set(first) == {0, 1, 2, 3}  # every shard owns some keys

    def test_remove_only_moves_dead_shards_keys(self):
        """Consistent hashing: removing one shard reassigns only the keys
        it owned; every other key keeps its shard."""
        ring = HashRing()
        for shard in range(4):
            ring.add(shard)
        keys = [f"key-{i}" for i in range(300)]
        before = {k: ring.lookup(k) for k in keys}
        ring.remove(2)
        after = {k: ring.lookup(k) for k in keys}
        for k in keys:
            if before[k] != 2:
                assert after[k] == before[k]
            else:
                assert after[k] != 2

    def test_empty_ring_raises_typed(self):
        with pytest.raises(ConnectionLostError):
            HashRing().lookup("anything")


class TestAdmissionController:
    def test_quota_rejection_is_per_tenant(self):
        async def go():
            ctrl = AdmissionController(
                quotas={"small": TenantQuota("small", max_inflight=2)},
                default_quota=TenantQuota("default", max_inflight=64),
            )
            await ctrl.acquire("small")
            await ctrl.acquire("small")
            with pytest.raises(QueueFullError):
                await ctrl.acquire("small")
            # Another tenant is unaffected by small's saturation.
            await ctrl.acquire("other")
            ctrl.release("small")
            await ctrl.acquire("small")  # slot freed
            stats = ctrl.stats()
            assert stats["small"]["rejected"] == 1
            assert stats["small"]["inflight"] == 2
            assert stats["other"]["rejected"] == 0

        _run(go())

    def test_wfq_prefers_heavier_tenant(self):
        """With the router saturated, a weight-2 tenant is admitted twice
        per weight-1 admission (start-time fair queueing)."""

        async def go():
            ctrl = AdmissionController(
                quotas={
                    "heavy": TenantQuota("heavy", max_inflight=64, weight=2.0),
                    "light": TenantQuota("light", max_inflight=64, weight=1.0),
                },
                max_concurrent=1,
            )
            await ctrl.acquire("hog")  # saturate the only slot
            order = []

            async def worker(tenant):
                await ctrl.acquire(tenant)
                order.append(tenant)
                ctrl.release(tenant)

            tasks = [
                asyncio.ensure_future(worker(t))
                for t in ["heavy", "heavy", "heavy", "heavy", "light", "light"]
            ]
            await asyncio.sleep(0.01)  # everyone queues behind the hog
            ctrl.release("hog")
            await asyncio.gather(*tasks)
            return order

        order = _run(go())
        # Tags: heavy 0, .5, 1, 1.5 — light 0, 1.  Interleaved 2:1.
        assert order == ["heavy", "light", "heavy", "heavy", "light", "heavy"]

    def test_cancelled_waiter_returns_quota(self):
        async def go():
            ctrl = AdmissionController(
                default_quota=TenantQuota("default", max_inflight=8),
                max_concurrent=1,
            )
            await ctrl.acquire("t")
            waiter = asyncio.ensure_future(ctrl.acquire("t"))
            await asyncio.sleep(0.01)
            waiter.cancel()
            with pytest.raises(asyncio.CancelledError):
                await waiter
            ctrl.release("t")
            assert ctrl.active == 0
            assert ctrl.stats()["t"]["inflight"] == 0
            await ctrl.acquire("t")  # slot and quota both usable again
            assert ctrl.active == 1

        _run(go())

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            TenantQuota("x", max_inflight=0)
        with pytest.raises(ConfigError):
            TenantQuota("x", weight=0.0)
        with pytest.raises(ConfigError):
            AdmissionController(max_concurrent=0)


class TestShardRouter:
    def test_tenant_quota_isolation_through_router(self, scheme):
        """One tenant over quota gets typed rejections; the other tenant's
        requests all succeed, and the rejections show up in stats."""
        pairs = [dna_pair(120, seed=100 + i) for i in range(6)]

        async def go():
            async with ShardRouter(
                shards=2,
                service_kwargs={"memory_cells": 400_000, "max_workers": 1},
                quotas={"capped": TenantQuota("capped", max_inflight=1)},
            ) as router:
                # Burst 6 concurrent requests for the capped tenant: at
                # most 1 in flight, so most are rejected (never queued).
                capped = await asyncio.gather(
                    *(
                        router.handle(
                            {
                                "op": "align", "id": i, "a": a.text, "b": b.text,
                                "gap_open": -6, "tenant": "capped",
                            }
                        )
                        for i, (a, b) in enumerate(pairs)
                    )
                )
                free = await asyncio.gather(
                    *(
                        router.handle(
                            {
                                "op": "align", "id": 10 + i, "a": a.text,
                                "b": b.text, "gap_open": -6, "tenant": "free",
                            }
                        )
                        for i, (a, b) in enumerate(pairs)
                    )
                )
                stats = (await router.handle({"op": "stats", "id": "s"}))["result"]
                return capped, free, stats

        capped, free, stats = _run(go())
        rejected = [r for r in capped if not r["ok"]]
        assert rejected, "burst should exceed max_inflight=1"
        assert all(r["error"]["type"] == "QueueFullError" for r in rejected)
        assert all(r["error"]["backpressure"] for r in rejected)
        assert all(r["ok"] for r in free)
        for (a, b), resp in zip(pairs, free):
            assert resp["result"]["score"] == needleman_wunsch(a, b, scheme).score
        tenants = stats["router"]["tenants"]
        assert tenants["capped"]["rejected"] == len(rejected)
        assert tenants["free"]["rejected"] == 0

    def test_shard_kill_reroute_is_bit_identical(self, scheme):
        """The acceptance property: kill a shard mid-burst and every
        completed answer still matches the serial reference exactly."""
        pairs = [dna_pair(150, divergence=0.2, seed=500 + i) for i in range(10)]
        requests = [
            {"op": "align", "id": i, "a": a.text, "b": b.text, "gap_open": -6}
            for i, (a, b) in enumerate(pairs)
        ]

        async def reference():
            handler = ProtocolHandler(
                AlignmentService(memory_cells=400_000, max_workers=2)
            )
            async with handler:
                return [await handler.handle(dict(r)) for r in requests]

        expected = _run(reference())
        assert all(r["ok"] for r in expected)

        async def sharded():
            async with ShardRouter(
                shards=2,
                service_kwargs={"memory_cells": 400_000, "max_workers": 2},
                split_memory=False,  # identical per-shard planning
            ) as router:
                responses = await asyncio.gather(
                    *(router.handle(dict(r)) for r in requests)
                )
                stats = (await router.handle({"op": "stats", "id": "s"}))["result"]
                return responses, stats

        plan = named_plan("shard-kill", seed=11)
        with faults.chaos(plan):
            responses, stats = _run(sharded())

        assert stats["router"]["shard_deaths"] == 1
        assert stats["router"]["shards_live"] == 1
        assert stats["router"]["reroutes"] >= 1
        for want, got in zip(expected, responses):
            assert got["ok"], got  # replay must recover every routed job
            for field in ("score", "gapped_a", "gapped_b"):
                assert got["result"][field] == want["result"][field]

    def test_cross_shard_stats_aggregation(self, scheme):
        """Aggregated stats sum per-shard counters, and singleflight /
        cache keys partition (identical jobs land on one shard)."""
        a, b = dna_pair(120, seed=77)

        async def go():
            async with ShardRouter(
                shards=3,
                service_kwargs={"memory_cells": 600_000, "max_workers": 1},
            ) as router:
                reqs = [
                    {"op": "align", "id": i, "a": a.text, "b": b.text,
                     "gap_open": -6}
                    for i in range(4)
                ]
                first = await router.handle(reqs[0])
                rest = await asyncio.gather(
                    *(router.handle(r) for r in reqs[1:])
                )
                stats = (await router.handle({"op": "stats", "id": "s"}))["result"]
                return first, rest, stats

        first, rest, stats = _run(go())
        assert first["ok"] and all(r["ok"] for r in rest)
        # Identical fingerprints hash to one shard: every repeat is a
        # cache hit (or dedup) there, never a recompute on another shard.
        assert all(
            r["result"]["cached"] or r["result"]["deduped"] for r in rest
        )
        assert stats["cache_hits"] + stats["dedup_hits"] == len(rest)
        # All four submissions landed on the one shard owning the key.
        assert stats["jobs_submitted"] == 4
        router_stats = stats["router"]
        assert router_stats["shards"] == 3
        assert router_stats["shards_live"] == 3
        assert router_stats["shard_deaths"] == 0
        assert len(stats["per_shard"]) == 3
        # The aggregate is the sum of the per-shard snapshots.
        assert stats["jobs_completed"] == sum(
            s.get("jobs_completed", 0) for s in stats["per_shard"].values()
        )

    def test_router_rejects_bad_config(self):
        with pytest.raises(ConfigError):
            ShardRouter(shards=0)
