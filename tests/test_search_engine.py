"""Differential tests for the corpus-search engine.

The contract under test: :func:`repro.search.search` returns exactly the
``(score, candidate, alignment)`` set brute-force Smith–Waterman over
every corpus sequence would — bit-identical scores, ranges and gapped
strings — across gap models, backends and seeds, while the pruning tier
skips a provable majority of candidates.
"""

from __future__ import annotations

import pytest

from repro import AlignConfig, ConfigError, JobTimeoutError, smith_waterman
from repro.align import Sequence
from repro.core.local import fastlsa_local, local_best_cell
from repro.search import CorpusIndex, search
from repro.workloads import evolve

from tests.conftest import random_dna


def make_corpus(rng, base, n_homologs=6, n_decoys=20, n_randoms=8,
                decoy_len=(10, 30)):
    """Homologs of ``base`` + short decoys + same-length randoms, shuffled."""
    records = []
    for i in range(n_homologs):
        records.append(
            evolve(base, sub_rate=0.08, indel_rate=0.02, rng=rng,
                   alphabet="ACGT", name=f"hom{i}")
        )
    for i in range(n_decoys):
        length = int(rng.integers(decoy_len[0], decoy_len[1] + 1))
        records.append(Sequence(random_dna(rng, length), name=f"decoy{i}"))
    for i in range(n_randoms):
        records.append(Sequence(random_dna(rng, len(base)), name=f"rand{i}"))
    order = rng.permutation(len(records))
    return [records[i] for i in order]


def brute_force(query, records, scheme, top_k, min_score=1):
    """The reference answer: full SW per candidate, (-score, idx) order."""
    rows = []
    for idx, rec in enumerate(records):
        loc = smith_waterman(query, rec, scheme)
        if loc.score >= min_score:
            rows.append((idx, loc))
    rows.sort(key=lambda r: (-r[1].score, r[0]))
    return rows[:top_k]


def assert_hits_match(hits, expected, records):
    """Bit-identity: corpus position, score, ranges and gapped strings."""
    assert [(h.corpus_index, h.score) for h in hits] == [
        (idx, loc.score) for idx, loc in expected
    ]
    for hit, (idx, loc) in zip(hits, expected):
        assert hit.name == records[idx].name
        assert hit.local is not None
        assert (hit.local.a_start, hit.local.a_end) == (loc.a_start, loc.a_end)
        assert (hit.local.b_start, hit.local.b_end) == (loc.b_start, loc.b_end)
        assert hit.local.alignment.gapped_a == loc.alignment.gapped_a
        assert hit.local.alignment.gapped_b == loc.alignment.gapped_b
        assert hit.bound >= hit.score  # the bound really was admissible


class TestDifferential:
    """search() == brute force, across gap models × backends × seeds."""

    @pytest.mark.parametrize("scheme_name", ["dna_scheme", "affine_dna_scheme"])
    @pytest.mark.parametrize("backend", [None, "threads", "processes"])
    def test_matches_brute_force(self, request, rng, scheme_name, backend):
        scheme = request.getfixturevalue(scheme_name)
        base = Sequence(random_dna(rng, 90), name="base")
        records = make_corpus(rng, base, n_homologs=5, n_decoys=18, n_randoms=6)
        index = CorpusIndex.build(records, "ACGT")
        query = evolve(base, sub_rate=0.05, indel_rate=0.02, rng=rng,
                       alphabet="ACGT", name="query")

        cfg = AlignConfig(backend=backend, max_workers=2) if backend else None
        res = search(query, index, scheme, top_k=5, config=cfg)

        assert_hits_match(res.hits, brute_force(query, records, scheme, 5), records)
        assert res.complete
        assert res.stats.candidates == len(records)
        assert res.stats.pruned + res.stats.scored == len(records)

    @pytest.mark.parametrize("seed", [3, 17, 51])
    def test_seed_sweep_serial(self, seed, dna_scheme):
        import numpy as np

        rng = np.random.default_rng(seed)
        base = Sequence(random_dna(rng, 70), name="base")
        records = make_corpus(rng, base, n_homologs=4, n_decoys=14, n_randoms=5)
        index = CorpusIndex.build(records, "ACGT")
        query = evolve(base, sub_rate=0.1, indel_rate=0.03, rng=rng,
                       alphabet="ACGT", name="query")
        res = search(query, index, dna_scheme, top_k=4)
        assert_hits_match(res.hits, brute_force(query, records, dna_scheme, 4), records)

    def test_acceptance_200_corpus_exact_and_pruned(self, rng, dna_scheme):
        """The PR's acceptance criterion: on a ≥200-sequence corpus the
        top-K is bit-identical to brute force AND ≥50% of candidates are
        rejected by the pruning tier before any DP."""
        base = Sequence(random_dna(rng, 120), name="base")
        records = make_corpus(rng, base, n_homologs=12, n_decoys=160,
                              n_randoms=40, decoy_len=(10, 30))
        assert len(records) >= 200
        index = CorpusIndex.build(records, "ACGT")
        query = evolve(base, sub_rate=0.05, indel_rate=0.01, rng=rng,
                       alphabet="ACGT", name="query")

        res = search(query, index, dna_scheme, top_k=8)

        assert_hits_match(res.hits, brute_force(query, records, dna_scheme, 8), records)
        assert res.stats.prune_rate >= 0.5, (
            f"pruning tier rejected only {res.stats.prune_rate:.0%} of "
            f"{res.stats.candidates} candidates"
        )

    def test_tie_break_is_corpus_order(self, dna_scheme):
        target = "ACGTACGTACGT"
        records = [Sequence(target, name=f"dup{i}") for i in range(6)]
        index = CorpusIndex.build(records, "ACGT")
        res = search(target, index, dna_scheme, top_k=4)
        assert [h.corpus_index for h in res.hits] == [0, 1, 2, 3]
        assert len({h.score for h in res.hits}) == 1


class TestEngineBehaviour:
    def test_min_score_filters_hits(self, dna_scheme):
        records = [Sequence("AAAA", name="near"), Sequence("TTTT", name="far")]
        index = CorpusIndex.build(records, "ACGT")
        res = search("AAAA", index, dna_scheme, top_k=5, min_score=1)
        assert [h.name for h in res.hits] == ["near"]
        res = search("AAAA", index, dna_scheme, top_k=5, min_score=10 ** 6)
        assert res.hits == []

    def test_empty_index(self, dna_scheme):
        index = CorpusIndex.build([], "ACGT")
        res = search("ACGT", index, dna_scheme, top_k=3)
        assert res.hits == [] and res.stats.candidates == 0
        assert res.complete

    def test_top_k_validation(self, dna_scheme):
        index = CorpusIndex.build(["ACGT"], "ACGT")
        with pytest.raises(ConfigError):
            search("ACGT", index, dna_scheme, top_k=0)
        with pytest.raises(ConfigError):
            search("ACGT", index, dna_scheme, retries=-1)

    def test_alphabet_mismatch_is_config_error(self, dna_scheme, protein_scheme):
        index = CorpusIndex.build(["ACGT"], "ACGT")
        with pytest.raises(ConfigError, match="alphabet"):
            search("ACGT", index, protein_scheme, top_k=1)

    def test_deadline_zero_times_out(self, dna_scheme):
        index = CorpusIndex.build(["ACGTACGT"] * 4, "ACGT")
        with pytest.raises(JobTimeoutError):
            search("ACGTACGT", index, dna_scheme, top_k=2, deadline=0.0)

    def test_external_executor_not_shut_down(self, rng, dna_scheme):
        from concurrent.futures import ThreadPoolExecutor

        base = Sequence(random_dna(rng, 50), name="base")
        records = make_corpus(rng, base, n_homologs=3, n_decoys=8, n_randoms=3)
        index = CorpusIndex.build(records, "ACGT")
        with ThreadPoolExecutor(max_workers=2) as pool:
            res = search(base, index, dna_scheme, top_k=3, executor=pool)
            assert_hits_match(res.hits, brute_force(base, records, dna_scheme, 3),
                              records)
            # the engine must not have shut the caller's pool down
            assert pool.submit(lambda: 42).result() == 42

    def test_streaming_snapshots(self, rng, dna_scheme):
        base = Sequence(random_dna(rng, 60), name="base")
        records = make_corpus(rng, base, n_homologs=5, n_decoys=10, n_randoms=4)
        index = CorpusIndex.build(records, "ACGT")
        updates = []
        res = search(base, index, dna_scheme, top_k=3,
                     on_update=lambda hits, stats: updates.append(hits))
        assert updates, "top-K membership changed at least once"
        for snap in updates:
            assert 1 <= len(snap) <= 3
            scores = [h.score for h in snap]
            assert scores == sorted(scores, reverse=True)
            assert all(h.local is None for h in snap)  # no alignments mid-flight
        # the last snapshot agrees with the final ranking
        assert [(h.corpus_index, h.score) for h in updates[-1]] == [
            (h.corpus_index, h.score) for h in res.hits
        ]


class TestBestCellHint:
    """The tier-3 fast path: fastlsa_local(best_cell=...) skips the sweep."""

    def test_hint_reproduces_unhinted_alignment(self, rng, dna_scheme):
        a = random_dna(rng, 60)
        b = random_dna(rng, 55)
        hint = local_best_cell(a, b, dna_scheme)
        assert hint[0] == smith_waterman(a, b, dna_scheme).score
        plain = fastlsa_local(a, b, dna_scheme)
        hinted = fastlsa_local(a, b, dna_scheme, best_cell=hint)
        assert hinted.score == plain.score
        assert (hinted.a_start, hinted.a_end, hinted.b_start, hinted.b_end) == (
            plain.a_start, plain.a_end, plain.b_start, plain.b_end
        )
        assert hinted.alignment.gapped_a == plain.alignment.gapped_a
        assert hinted.alignment.gapped_b == plain.alignment.gapped_b

    def test_out_of_range_hint_fails_loudly(self, dna_scheme):
        with pytest.raises(AssertionError):
            fastlsa_local("ACGT", "ACGT", dna_scheme, best_cell=(5, 99, 1))
