"""Tests for the LRU result cache and cache-hit short-circuiting."""

import asyncio

import pytest

from repro.errors import ConfigError
from repro.scoring import ScoringScheme, blosum62, dna_simple, linear_gap
from repro.service import AlignmentService, ResultCache, scheme_digest


@pytest.fixture
def scheme():
    return ScoringScheme(dna_simple(), linear_gap(-6))


class TestResultCacheUnit:
    def test_put_get_counters(self):
        cache = ResultCache(capacity=4)
        assert cache.get("k") is None
        cache.put("k", 42)
        assert cache.get("k") == 42
        assert cache.hits == 1 and cache.misses == 1
        assert cache.stats()["cache_hit_rate"] == 0.5

    def test_lru_eviction_order(self):
        cache = ResultCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")        # refresh 'a': now 'b' is least recent
        cache.put("c", 3)     # evicts 'b'
        assert cache.get("a") == 1
        assert cache.get("b") is None
        assert cache.get("c") == 3
        assert cache.evictions == 1

    def test_capacity_zero_disables(self):
        cache = ResultCache(capacity=0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_clear_keeps_counters(self):
        cache = ResultCache(capacity=2)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert cache.get("a") is None
        assert cache.hits == 1

    def test_negative_capacity_rejected(self):
        with pytest.raises(ConfigError):
            ResultCache(capacity=-1)


class TestSchemeDigest:
    def test_stable_across_reconstruction(self):
        s1 = ScoringScheme(dna_simple(), linear_gap(-6))
        s2 = ScoringScheme(dna_simple(), linear_gap(-6))
        assert s1 is not s2
        assert scheme_digest(s1) == scheme_digest(s2)

    def test_distinguishes_matrix_and_gap(self):
        base = scheme_digest(ScoringScheme(dna_simple(), linear_gap(-6)))
        assert base != scheme_digest(ScoringScheme(dna_simple(), linear_gap(-7)))
        assert base != scheme_digest(ScoringScheme(blosum62(), linear_gap(-6)))


class TestServiceCacheHits:
    def _counting_service(self, monkeypatch, **kwargs):
        svc = AlignmentService(**kwargs)
        calls = []
        real = svc._compute_group

        def counting(group):
            calls.append(len(group))
            return real(group)

        monkeypatch.setattr(svc, "_compute_group", counting)
        return svc, calls

    def test_repeat_request_short_circuits(self, scheme, monkeypatch):
        async def go():
            svc, calls = self._counting_service(
                monkeypatch, memory_cells=200_000, max_workers=2, cache_size=16
            )
            async with svc:
                r1 = await svc.align("ACGTACGT", "ACGTTCGT", scheme)
                r2 = await svc.align("ACGTACGT", "ACGTTCGT", scheme)
                r3 = await svc.align("ACGTACGT", "ACGTTCGT", scheme)
                return r1, r2, r3, calls, svc.stats()

        r1, r2, r3, calls, stats = asyncio.run(go())
        assert calls == [1]  # computed exactly once
        assert not r1.cached and r2.cached and r3.cached
        assert (r1.score, r1.gapped_a) == (r2.score, r2.gapped_a)
        assert stats["cache_hits"] == 2
        assert stats["cache_short_circuits"] == 2
        assert stats["jobs_completed"] == 3

    def test_reconstructed_scheme_still_hits(self, monkeypatch):
        async def go():
            svc, calls = self._counting_service(
                monkeypatch, memory_cells=200_000, cache_size=16
            )
            async with svc:
                a = await svc.align("ACGT", "ACGA",
                                    ScoringScheme(dna_simple(), linear_gap(-6)))
                b = await svc.align("ACGT", "ACGA",
                                    ScoringScheme(dna_simple(), linear_gap(-6)))
                return a, b, calls

        a, b, calls = asyncio.run(go())
        assert calls == [1] and b.cached

    def test_mode_and_scheme_partition_keys(self, scheme, monkeypatch):
        async def go():
            svc, calls = self._counting_service(
                monkeypatch, memory_cells=200_000, max_batch=1, cache_size=16
            )
            other = ScoringScheme(dna_simple(), linear_gap(-9))
            async with svc:
                await svc.align("ACGTACGT", "ACGTTCGT", scheme, mode="global")
                await svc.align("ACGTACGT", "ACGTTCGT", scheme, mode="local")
                await svc.align("ACGTACGT", "ACGTTCGT", scheme, score_only=True)
                await svc.align("ACGTACGT", "ACGTTCGT", other)
                return calls, svc.stats()

        calls, stats = asyncio.run(go())
        assert calls == [1, 1, 1, 1]  # four distinct keys, no false hits
        assert stats["cache_hits"] == 0

    def test_cache_disabled_always_computes(self, scheme, monkeypatch):
        async def go():
            svc, calls = self._counting_service(
                monkeypatch, memory_cells=200_000, cache_size=0
            )
            async with svc:
                await svc.align("ACGT", "ACGA", scheme)
                await svc.align("ACGT", "ACGA", scheme)
                return calls

        assert len(asyncio.run(go())) == 2

    def test_concurrent_duplicates_singleflight(self, scheme, monkeypatch):
        """Identical requests in flight at once compute only once."""

        async def go():
            svc, calls = self._counting_service(
                monkeypatch, memory_cells=200_000, max_workers=2,
                max_batch=1, cache_size=16,
            )
            async with svc:
                results = await asyncio.gather(
                    *(svc.align("ACGTACGT", "ACGTTCGT", scheme)
                      for _ in range(5))
                )
                return results, calls, svc.stats()

        results, calls, stats = asyncio.run(go())
        assert calls == [1]  # one real computation for five callers
        assert stats["dedup_hits"] == 4
        # Followers are deduped (piggybacked on fresh work), NOT cached.
        assert sum(1 for r in results if r.deduped) == 4
        assert not any(r.cached for r in results)
        assert len({r.score for r in results}) == 1

    def test_batched_results_are_cached_per_job(self, scheme, monkeypatch):
        async def go():
            svc, calls = self._counting_service(
                monkeypatch, memory_cells=400_000, max_workers=1,
                max_batch=8, cache_size=16,
            )
            async with svc:
                pairs = [("ACGTACGT", t) for t in ("ACGA", "GGGG", "ACGTT")]
                await svc.align_many(pairs, scheme, mode="local")
                rerun = await svc.align("ACGTACGT", "GGGG", scheme, mode="local")
                return calls, rerun

        calls, rerun = asyncio.run(go())
        assert calls == [3]  # one coalesced batch, then a pure cache hit
        assert rerun.cached
