"""Tests for the Needleman–Wunsch full-matrix baseline."""

from repro.align import check_alignment
from repro.baselines import needleman_wunsch
from repro.kernels.reference import ref_score_affine, ref_score_linear
from tests.conftest import random_dna, random_protein


class TestPaperExample:
    def test_score_82(self, table1_scheme):
        al = needleman_wunsch("TDVLKAD", "TLDKLLKD", table1_scheme)
        assert al.score == 82

    def test_alignment_valid(self, table1_scheme):
        al = needleman_wunsch("TDVLKAD", "TLDKLLKD", table1_scheme)
        ok, msg = check_alignment(al, table1_scheme)
        assert ok, msg

    def test_five_identity_columns(self, table1_scheme):
        # The introduction's example: 5 identically aligned letters.
        al = needleman_wunsch("TDVLKAD", "TLDKLLKD", table1_scheme)
        assert al.num_matches == 5


class TestCorrectness:
    def test_matches_reference_linear(self, rng, dna_scheme):
        for _ in range(20):
            a = random_dna(rng, int(rng.integers(0, 40)))
            b = random_dna(rng, int(rng.integers(0, 40)))
            al = needleman_wunsch(a, b, dna_scheme)
            ref = ref_score_linear(
                dna_scheme.encode(a), dna_scheme.encode(b), dna_scheme.matrix.table, -6
            )
            assert al.score == ref
            assert check_alignment(al, dna_scheme)[0]

    def test_matches_reference_affine(self, rng, affine_scheme):
        for _ in range(15):
            a = random_protein(rng, int(rng.integers(0, 25)))
            b = random_protein(rng, int(rng.integers(0, 25)))
            al = needleman_wunsch(a, b, affine_scheme)
            ref = ref_score_affine(
                affine_scheme.encode(a), affine_scheme.encode(b),
                affine_scheme.matrix.table, -11, -2,
            )
            assert al.score == ref
            assert check_alignment(al, affine_scheme)[0]


class TestEdgeCases:
    def test_both_empty(self, dna_scheme):
        al = needleman_wunsch("", "", dna_scheme)
        assert al.score == 0 and len(al) == 0

    def test_one_empty(self, dna_scheme):
        al = needleman_wunsch("ACGT", "", dna_scheme)
        assert al.score == -24
        assert al.gapped_b == "----"

    def test_single_residues(self, dna_scheme):
        al = needleman_wunsch("A", "A", dna_scheme)
        assert al.score == 5

    def test_identical_sequences(self, rng, dna_scheme):
        s = random_dna(rng, 50)
        al = needleman_wunsch(s, s, dna_scheme)
        assert al.score == 5 * 50
        assert al.identity == 1.0


class TestStats:
    def test_cells_computed_is_mn(self, dna_scheme):
        al = needleman_wunsch("ACGTAC", "ACG", dna_scheme)
        assert al.stats.cells_computed == 18

    def test_peak_memory_quadratic(self, dna_scheme):
        al = needleman_wunsch("A" * 50, "A" * 60, dna_scheme)
        assert al.stats.peak_cells_resident == 51 * 61

    def test_affine_peak_is_three_layers(self, affine_scheme):
        al = needleman_wunsch("A" * 10, "R" * 10, affine_scheme)
        assert al.stats.peak_cells_resident == 3 * 11 * 11

    def test_algorithm_name(self, dna_scheme):
        assert needleman_wunsch("A", "C", dna_scheme).algorithm == "needleman-wunsch"
