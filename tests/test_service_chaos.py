"""Chaos tests: the service stack under injected faults.

Every fault site is driven through the real service path and the outcome
is checked against the robustness contract: a faulted job must either

* retry to the **correct** answer (scores cross-checked against the
  full-matrix reference),
* degrade gracefully with the downgrade recorded on the job result, or
* surface a **typed** :class:`~repro.errors.ReproError` —

and must never hang, return a wrong alignment, or leak a worker thread.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import TimeoutError as FutureTimeout

import pytest

from repro.baselines import needleman_wunsch
from repro.core import AlignConfig
from repro.errors import (
    CircuitOpenError,
    ConnectionLostError,
    InjectedFaultError,
    JobTimeoutError,
    MemoryBudgetError,
    ReproError,
)
from repro.faults import runtime as faults
from repro.faults.plan import (
    SITE_BASE_KERNEL,
    SITE_CACHE_GET,
    SITE_CACHE_PUT,
    SITE_GOVERNOR_ADMIT,
    SITE_SERVER_READ,
    SITE_SERVER_WRITE,
    FaultPlan,
    FaultSpec,
    named_plan,
)
from repro.scoring import ScoringScheme, dna_simple, linear_gap
from repro.service import (
    AlignmentClient,
    AlignmentService,
    JobState,
    TCPAlignmentClient,
    serve_tcp,
)
from repro.service.resilience import RetryPolicy
from repro.workloads import dna_pair

CHAOS_SEEDS = [11, 23, 47]


@pytest.fixture
def scheme():
    return ScoringScheme(dna_simple(), linear_gap(-6))


@pytest.fixture(autouse=True)
def _no_global_plan():
    faults.disable()
    yield
    faults.disable()


def _svc(**kwargs):
    defaults = dict(
        memory_cells=400_000,
        max_workers=1,
        max_batch=1,
        cache_size=32,
        retry_policy=RetryPolicy(max_retries=3, base_delay=0.001, max_delay=0.01),
    )
    defaults.update(kwargs)
    return AlignmentService(**defaults)


def _run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=60))


class TestTransientFaultsRetryToCorrectAnswer:
    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_base_kernel_fault_retried(self, scheme, seed):
        a, b = dna_pair(90, seed=seed)
        want = needleman_wunsch(a, b, scheme).score
        plan = FaultPlan([FaultSpec(SITE_BASE_KERNEL, max_fires=1)], seed=seed)

        async def go():
            async with _svc() as svc:
                with faults.chaos(plan):
                    result = await svc.align(a, b, scheme)
                return result, svc.stats()

        result, stats = _run(go())
        assert result.score == want
        assert result.retries >= 1
        assert stats["retries"] >= 1
        assert not result.downgrades

    def test_governor_admit_fault_retried(self, scheme):
        a, b = dna_pair(60, seed=1)
        want = needleman_wunsch(a, b, scheme).score
        plan = FaultPlan([FaultSpec(SITE_GOVERNOR_ADMIT, max_fires=2)], seed=0)

        async def go():
            async with _svc() as svc:
                with faults.chaos(plan):
                    result = await svc.align(a, b, scheme)
                return result, svc.stats()

        result, stats = _run(go())
        assert result.score == want
        assert result.retries >= 2
        assert stats["retries"] >= 2


class TestDegradation:
    def test_memory_fault_mid_run_degrades(self, scheme):
        a, b = dna_pair(90, seed=2)
        want = needleman_wunsch(a, b, scheme).score
        plan = FaultPlan(
            [FaultSpec(SITE_BASE_KERNEL, error="MemoryBudgetError", max_fires=1)],
            seed=0,
        )

        async def go():
            async with _svc() as svc:
                with faults.chaos(plan):
                    result = await svc.align(a, b, scheme)
                return result, svc.stats()

        result, stats = _run(go())
        assert result.score == want
        assert result.downgrades and "memory_budget" in result.downgrades[0]
        assert stats["downgrades"] >= 1
        assert stats["degraded_jobs"] >= 1

    def test_retries_exhausted_degrades(self, scheme):
        a, b = dna_pair(90, seed=3)
        want = needleman_wunsch(a, b, scheme).score
        # Fires on the first base-case hit of each of the first 3 attempts;
        # max_retries=2 exhausts the budget, then the ladder steps down and
        # the 4th (degraded) attempt runs clean.
        plan = FaultPlan([FaultSpec(SITE_BASE_KERNEL, max_fires=3)], seed=0)

        async def go():
            async with _svc(
                retry_policy=RetryPolicy(max_retries=2, base_delay=0.001)
            ) as svc:
                with faults.chaos(plan):
                    result = await svc.align(a, b, scheme)
                return result, svc.stats()

        result, stats = _run(go())
        assert result.score == want
        assert result.retries == 2
        assert result.downgrades and "retries_exhausted" in result.downgrades[0]
        assert stats["downgrades"] >= 1

    def test_fatal_fault_surfaces_typed_and_service_survives(self, scheme):
        a, b = dna_pair(80, seed=4)
        want = needleman_wunsch(a, b, scheme).score
        plan = FaultPlan(
            [FaultSpec(SITE_BASE_KERNEL, transient=False, max_fires=1)], seed=0
        )

        async def go():
            async with _svc(degrade=False) as svc:
                with faults.chaos(plan):
                    with pytest.raises(InjectedFaultError):
                        await svc.align(a, b, scheme)
                    # same service, same fault plan (now exhausted): healthy
                    result = await svc.align(a, b, scheme)
                return result, svc.stats()

        result, stats = _run(go())
        assert result.score == want
        assert stats["jobs_failed"] == 1 and stats["jobs_completed"] == 1

    def test_admit_backpressure_stays_typed(self, scheme):
        """An over-budget admit fault is backpressure, never a silent replan."""
        a, b = dna_pair(60, seed=5)
        plan = FaultPlan(
            [FaultSpec(SITE_GOVERNOR_ADMIT, error="MemoryBudgetError", max_fires=1)],
            seed=0,
        )

        async def go():
            async with _svc() as svc:
                with faults.chaos(plan):
                    with pytest.raises(MemoryBudgetError):
                        await svc.align(a, b, scheme)
                    result = await svc.align(a, b, scheme)
                return result

        result = _run(go())
        assert not result.downgrades


class TestCacheFaults:
    def test_cache_outage_degrades_to_misses(self, scheme):
        a, b = dna_pair(70, seed=6)
        want = needleman_wunsch(a, b, scheme).score
        plan = FaultPlan(
            [
                FaultSpec(SITE_CACHE_GET, p=1.0, max_fires=None),
                FaultSpec(SITE_CACHE_PUT, p=1.0, max_fires=None),
            ],
            seed=0,
        )

        async def go():
            async with _svc() as svc:
                with faults.chaos(plan):
                    first = await svc.align(a, b, scheme)
                    second = await svc.align(a, b, scheme)
                return first, second, svc.stats()

        first, second, stats = _run(go())
        assert first.score == want and second.score == want
        assert not first.cached and not second.cached  # outage: no hits
        assert stats["cache_errors"] >= 2
        assert stats["jobs_failed"] == 0

    def test_bitrot_detected_by_fingerprint(self, scheme):
        a, b = dna_pair(70, seed=7)
        want = needleman_wunsch(a, b, scheme).score
        plan = FaultPlan(
            [FaultSpec(SITE_CACHE_PUT, kind="corrupt", max_fires=1)], seed=0
        )

        async def go():
            async with _svc() as svc:
                with faults.chaos(plan):
                    first = await svc.align(a, b, scheme)
                    # the rotten entry must be detected, evicted, recomputed
                    second = await svc.align(a, b, scheme)
                return first, second, svc.stats()

        first, second, stats = _run(go())
        assert first.score == want
        assert second.score == want  # never serves the corrupted copy
        assert not second.cached
        assert stats["cache_corruptions"] >= 1


class TestDeadlineMidRun:
    """Regression for the deadline-only-fires-while-queued bug: a running
    job must be cancelled cooperatively at the next tile boundary."""

    def test_running_job_cancelled_at_tile_boundary(self, scheme):
        a, b = dna_pair(200, seed=8)
        # Straggler base cases: each one sleeps, so completion would take
        # tens of seconds — only mid-run cancellation can finish fast.
        plan = FaultPlan(
            [FaultSpec(SITE_BASE_KERNEL, kind="delay", delay=0.03, p=1.0,
                       max_fires=None)],
            seed=0,
        )
        deadline = 0.2

        async def go():
            async with _svc(degrade=False) as svc:
                with faults.chaos(plan):
                    job = await svc.submit(
                        a, b, scheme, timeout=deadline,
                        config=AlignConfig(k=2, base_cells=64),
                    )
                    t0 = asyncio.get_running_loop().time()
                    with pytest.raises(JobTimeoutError) as excinfo:
                        await job.future
                    elapsed = asyncio.get_running_loop().time() - t0
                return job, excinfo.value, elapsed, svc.stats()

        job, exc, elapsed, stats = _run(go())
        assert job.state == JobState.FAILED
        assert job.started_at is not None  # it was RUNNING, not queued
        # cooperative-cancellation message, not the queue-expiry one
        assert "deadline exceeded" in str(exc)
        # stopped within ~one tile of the deadline, nowhere near completion
        assert elapsed < deadline + 3.0
        assert stats["jobs_timed_out"] >= 1

    def test_deadline_expiry_is_never_retried(self, scheme):
        a, b = dna_pair(200, seed=9)
        plan = FaultPlan(
            [FaultSpec(SITE_BASE_KERNEL, kind="delay", delay=0.03, p=1.0,
                       max_fires=None)],
            seed=0,
        )

        async def go():
            async with _svc() as svc:  # retries enabled
                with faults.chaos(plan):
                    with pytest.raises(JobTimeoutError):
                        await svc.align(
                            a, b, scheme, timeout=0.15,
                            config=AlignConfig(k=2, base_cells=64),
                        )
                return svc.stats()

        stats = _run(go())
        assert stats["retries"] == 0  # permanent failure: no retry burn
        assert stats["jobs_timed_out"] >= 1


class TestCircuitBreaker:
    def test_breaker_opens_and_fast_fails(self, scheme):
        a, b = dna_pair(60, seed=10)
        plan = FaultPlan([FaultSpec(SITE_BASE_KERNEL, max_fires=1)], seed=0)

        async def go():
            async with _svc(
                degrade=False, breaker_threshold=1, breaker_reset_after=60.0,
                retry_policy=RetryPolicy(max_retries=0),
            ) as svc:
                with faults.chaos(plan):
                    with pytest.raises(InjectedFaultError):
                        await svc.align(a, b, scheme)
                    # fault budget is spent, but the breaker is now open:
                    # the job fails fast without touching a worker
                    with pytest.raises(CircuitOpenError):
                        await svc.align(a, b, scheme)
                return svc.stats()

        stats = _run(go())
        assert stats["breaker_fast_fails"] >= 1
        assert any(
            stats[k] == "open" for k in stats if k.endswith("_state")
        )

    def test_breaker_half_open_recovery(self, scheme):
        a, b = dna_pair(60, seed=12)
        want = needleman_wunsch(a, b, scheme).score
        plan = FaultPlan([FaultSpec(SITE_BASE_KERNEL, max_fires=1)], seed=0)

        async def go():
            async with _svc(
                degrade=False, breaker_threshold=1, breaker_reset_after=0.05,
                retry_policy=RetryPolicy(max_retries=0),
            ) as svc:
                with faults.chaos(plan):
                    with pytest.raises(InjectedFaultError):
                        await svc.align(a, b, scheme)
                    await asyncio.sleep(0.1)  # reset interval elapses
                    result = await svc.align(a, b, scheme)  # half-open trial
                return result, svc.stats()

        result, stats = _run(go())
        assert result.score == want
        assert all(
            stats[k] == "closed" for k in stats if k.endswith("_state")
        )

    def test_open_breaker_degrades_when_enabled(self, scheme):
        a, b = dna_pair(60, seed=13)
        want = needleman_wunsch(a, b, scheme).score

        async def go():
            async with _svc(
                degrade=True, breaker_threshold=1, breaker_reset_after=60.0,
            ) as svc:
                # Find the backend this job would run on, and trip it.
                probe = svc.governor.admit(len(a), len(b), affine=False)
                svc.breakers[probe.method].record_failure()
                result = await svc.align(a, b, scheme)
                return probe.method, result, svc.stats()

        method, result, stats = _run(go())
        assert result.score == want
        assert result.downgrades
        assert f"breaker_open:{method}" in result.downgrades[0]
        assert stats["breaker_fast_fails"] >= 1


class TestEverythingPlanSweep:
    """The CLI's acceptance loop as a test: N jobs under the everything
    plan; every outcome is correct, degraded-but-correct, or typed."""

    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    def test_no_wrong_answers_no_hangs(self, scheme, seed):
        pairs = [dna_pair(60, divergence=0.2, seed=seed * 100 + i) for i in range(8)]
        truth = [needleman_wunsch(a, b, scheme).score for a, b in pairs]
        plan = named_plan("everything", seed=seed)
        with faults.chaos(plan):
            with AlignmentClient(
                memory_cells=300_000, max_workers=2, max_batch=1,
                retry_policy=RetryPolicy(max_retries=3, base_delay=0.001),
                retry_seed=seed,
            ) as client:
                futures = [client.submit(a, b, scheme) for a, b in pairs]
                for want, fut in zip(truth, futures):
                    try:
                        result = fut.result(timeout=30)
                    except FutureTimeout:
                        pytest.fail("chaos job hung")
                    except ReproError:
                        continue  # typed failure: acceptable outcome
                    assert result.score == want

    def test_no_leaked_worker_threads(self, scheme):
        before = set(threading.enumerate())
        plan = named_plan("everything", seed=11)
        with faults.chaos(plan):
            with AlignmentClient(
                memory_cells=300_000, max_workers=2,
                retry_policy=RetryPolicy(max_retries=2, base_delay=0.001),
            ) as client:
                for i in range(4):
                    a, b = dna_pair(50, seed=500 + i)
                    try:
                        client.align(a, b, scheme)
                    except ReproError:
                        pass
        time.sleep(0.05)
        leaked = [
            t for t in threading.enumerate()
            if t not in before and t.is_alive()
        ]
        assert not leaked, f"leaked threads: {[t.name for t in leaked]}"


# ----------------------------------------------------------------------
# TCP transport chaos
# ----------------------------------------------------------------------
def _start_tcp_server(**service_kwargs):
    """Run serve_tcp on a background thread; returns (host, port, thread)."""
    bound = {}
    ready = threading.Event()

    def run():
        async def main():
            svc = AlignmentService(**service_kwargs)
            ev = asyncio.Event()
            task = asyncio.get_running_loop().create_task(serve_tcp(svc, ready=ev))
            await ev.wait()
            bound["addr"] = serve_tcp.bound
            ready.set()
            await task

        asyncio.run(main())

    thread = threading.Thread(target=run, name="chaos-tcp-server", daemon=True)
    thread.start()
    assert ready.wait(10), "server failed to start"
    host, port = bound["addr"]
    return host, port, thread


def _stop_tcp_server(host, port, thread):
    with TCPAlignmentClient(host, port, timeout=5.0) as client:
        client.shutdown()
    thread.join(timeout=10)
    assert not thread.is_alive(), "server thread failed to drain"


class TestServerChaos:
    def test_write_fault_client_retries_to_success(self, scheme):
        a, b = dna_pair(60, seed=14)
        want = needleman_wunsch(a, b, scheme).score
        host, port, thread = _start_tcp_server(
            memory_cells=300_000, max_workers=1
        )
        try:
            plan = FaultPlan([FaultSpec(SITE_SERVER_WRITE, max_fires=1)], seed=0)
            with faults.chaos(plan):
                with TCPAlignmentClient(
                    host, port, timeout=5.0,
                    policy=RetryPolicy(max_retries=3, base_delay=0.001),
                ) as client:
                    result = client.align(a.text, b.text)
            assert result["score"] == want
            assert client.retries >= 1
            assert client.reconnects >= 2  # original + at least one replay
        finally:
            _stop_tcp_server(host, port, thread)

    def test_read_fault_storm_raises_connection_lost(self, scheme):
        host, port, thread = _start_tcp_server(
            memory_cells=300_000, max_workers=1
        )
        try:
            # Every read on every connection is severed: retries cannot help.
            plan = FaultPlan(
                [FaultSpec(SITE_SERVER_READ, p=1.0, max_fires=None)], seed=0
            )
            with faults.chaos(plan):
                client = TCPAlignmentClient(
                    host, port, timeout=5.0,
                    policy=RetryPolicy(max_retries=1, base_delay=0.001),
                )
                with pytest.raises(ConnectionLostError) as excinfo:
                    client.ping()
                client.close()
            assert excinfo.value.attempts == 2
            # chaos scope exited: the same server heals without a restart
            with TCPAlignmentClient(host, port, timeout=5.0) as client:
                assert client.ping()
        finally:
            _stop_tcp_server(host, port, thread)

    def test_dropped_connection_never_hangs_client(self, scheme):
        """A write fault mid-response must surface as EOF promptly (the
        dead-connection race in the read loop), not leave the client
        blocked on a response that will never come."""
        host, port, thread = _start_tcp_server(
            memory_cells=300_000, max_workers=1
        )
        try:
            plan = FaultPlan(
                [FaultSpec(SITE_SERVER_WRITE, p=1.0, max_fires=None)], seed=0
            )
            with faults.chaos(plan):
                client = TCPAlignmentClient(
                    host, port, timeout=5.0,
                    policy=RetryPolicy(max_retries=1, base_delay=0.001),
                )
                t0 = time.monotonic()
                with pytest.raises(ConnectionLostError):
                    client.ping()
                assert time.monotonic() - t0 < 5.0
                client.close()
        finally:
            _stop_tcp_server(host, port, thread)
