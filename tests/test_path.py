"""Tests for repro.align.path."""

import pytest

from repro.align import AlignmentPath, Layer, Move, PathBuilder, moves_of
from repro.errors import PathError


class TestPathBuilder:
    def test_build_backwards(self):
        b = PathBuilder((2, 2))
        b.append((1, 1))
        b.append((0, 1))
        b.append((0, 0))
        path = b.finalize()
        assert path.points == ((0, 0), (0, 1), (1, 1), (2, 2))

    def test_head(self):
        b = PathBuilder((3, 3))
        assert b.head == (3, 3)
        b.append((2, 3))
        assert b.head == (2, 3)

    def test_illegal_step_rejected(self):
        b = PathBuilder((2, 2))
        with pytest.raises(PathError):
            b.append((0, 0))  # jump of 2

    def test_forward_step_rejected(self):
        b = PathBuilder((2, 2))
        with pytest.raises(PathError):
            b.append((3, 2))

    def test_default_layer(self):
        assert PathBuilder((1, 1)).layer is Layer.H

    def test_layer_mutable(self):
        b = PathBuilder((1, 1), Layer.F)
        assert b.layer is Layer.F
        b.layer = Layer.E
        assert b.layer is Layer.E

    def test_extend(self):
        b = PathBuilder((2, 0))
        b.extend([(1, 0), (0, 0)])
        assert len(b) == 3


class TestAlignmentPath:
    def test_single_point(self):
        p = AlignmentPath([(0, 0)])
        assert p.start == p.end == (0, 0)
        assert p.moves() == []

    def test_moves(self):
        p = AlignmentPath([(0, 0), (1, 1), (2, 1), (2, 2)])
        assert p.moves() == [Move.DIAG, Move.DOWN, Move.RIGHT]

    def test_is_complete(self):
        p = AlignmentPath([(0, 0), (1, 1)])
        assert p.is_complete(1, 1)
        assert not p.is_complete(2, 2)

    def test_empty_rejected(self):
        with pytest.raises(PathError):
            AlignmentPath([])

    def test_illegal_step_rejected(self):
        with pytest.raises(PathError):
            AlignmentPath([(0, 0), (2, 2)])

    def test_backward_step_rejected(self):
        with pytest.raises(PathError):
            AlignmentPath([(1, 1), (0, 0)])

    def test_equality_and_hash(self):
        p1 = AlignmentPath([(0, 0), (1, 1)])
        p2 = AlignmentPath([(0, 0), (1, 1)])
        assert p1 == p2
        assert hash(p1) == hash(p2)

    def test_indexing(self):
        p = AlignmentPath([(0, 0), (0, 1), (1, 2)])
        assert p[1] == (0, 1)
        assert len(p) == 3

    def test_points_coerced_to_int(self):
        import numpy as np

        p = AlignmentPath([(np.int64(0), np.int64(0)), (np.int64(1), np.int64(0))])
        assert isinstance(p.points[0][0], int)


class TestMovesOf:
    def test_roundtrip(self):
        pts = [(0, 0), (1, 1), (1, 2), (2, 2)]
        assert moves_of(pts) == [Move.DIAG, Move.RIGHT, Move.DOWN]

    def test_illegal(self):
        with pytest.raises(PathError):
            moves_of([(0, 0), (0, 2)])
