"""Tests for Parallel FastLSA drivers (threaded + simulated)."""

import pytest

from repro.align import check_alignment
from repro import AlignConfig
from repro.core import fastlsa
from repro.errors import ConfigError
from repro.parallel import parallel_fastlsa, simulated_parallel_fastlsa
from tests.conftest import random_dna, random_protein


class TestThreaded:
    @pytest.mark.parametrize("P", [1, 2, 4])
    def test_identical_to_sequential_linear(self, rng, dna_scheme, P):
        for _ in range(4):
            a = random_dna(rng, int(rng.integers(0, 120)))
            b = random_dna(rng, int(rng.integers(0, 120)))
            seq = fastlsa(a, b, dna_scheme, config=AlignConfig(k=4, base_cells=64))
            par = parallel_fastlsa(a, b, dna_scheme, P=P, config=AlignConfig(k=4, base_cells=64))
            assert par.score == seq.score
            assert par.gapped_a == seq.gapped_a and par.gapped_b == seq.gapped_b

    def test_identical_to_sequential_affine(self, rng, affine_scheme):
        for _ in range(3):
            a = random_protein(rng, int(rng.integers(10, 90)))
            b = random_protein(rng, int(rng.integers(10, 90)))
            seq = fastlsa(a, b, affine_scheme, config=AlignConfig(k=3, base_cells=100))
            par = parallel_fastlsa(a, b, affine_scheme, P=3, config=AlignConfig(k=3, base_cells=100))
            assert par.score == seq.score
            assert check_alignment(par, affine_scheme)[0]

    def test_cells_computed_matches_sequential(self, rng, dna_scheme):
        a, b = random_dna(rng, 100), random_dna(rng, 100)
        seq = fastlsa(a, b, dna_scheme, config=AlignConfig(k=4, base_cells=64))
        par = parallel_fastlsa(a, b, dna_scheme, P=2, config=AlignConfig(k=4, base_cells=64))
        assert par.stats.cells_computed == seq.stats.cells_computed

    def test_invalid_p(self, dna_scheme):
        with pytest.raises(ConfigError):
            parallel_fastlsa("AC", "AC", dna_scheme, P=0)

    def test_algorithm_name(self, dna_scheme):
        par = parallel_fastlsa("ACGT", "ACGA", dna_scheme, P=2)
        assert "P=2" in par.algorithm


class TestSimulated:
    def test_alignment_still_exact(self, rng, dna_scheme):
        a, b = random_dna(rng, 150), random_dna(rng, 150)
        seq = fastlsa(a, b, dna_scheme, config=AlignConfig(k=4, base_cells=256))
        al, rep = simulated_parallel_fastlsa(a, b, dna_scheme, P=4, k=4, base_cells=256)
        assert al.score == seq.score

    def test_speedup_bounds(self, rng, dna_scheme):
        a, b = random_dna(rng, 400), random_dna(rng, 400)
        for P in (1, 2, 4, 8):
            _, rep = simulated_parallel_fastlsa(a, b, dna_scheme, P=P, k=4)
            assert 1.0 <= rep.speedup <= P + 1e-9
            assert 0.0 < rep.efficiency <= 1.0

    def test_p1_speedup_is_one(self, rng, dna_scheme):
        a, b = random_dna(rng, 200), random_dna(rng, 200)
        _, rep = simulated_parallel_fastlsa(a, b, dna_scheme, P=1, k=3)
        assert rep.speedup == pytest.approx(1.0)

    def test_speedup_monotone_in_p(self, rng, dna_scheme):
        a, b = random_dna(rng, 500), random_dna(rng, 500)
        prev = 0.0
        for P in (1, 2, 4, 8):
            _, rep = simulated_parallel_fastlsa(a, b, dna_scheme, P=P, k=6)
            assert rep.speedup >= prev - 1e-9
            prev = rep.speedup

    def test_almost_linear_up_to_8(self, rng, dna_scheme):
        """Paper abstract: 'good speedups, almost linear for 8 processors
        or less'."""
        a, b = random_dna(rng, 800), random_dna(rng, 800)
        _, rep = simulated_parallel_fastlsa(a, b, dna_scheme, P=8, k=6)
        assert rep.speedup >= 0.8 * 8

    def test_efficiency_increases_with_size(self, rng, dna_scheme):
        """Paper abstract: 'the efficiency of Parallel FastLSA increases
        with the size of the sequences'."""
        effs = []
        for n in (200, 600, 1600):
            a, b = random_dna(rng, n), random_dna(rng, n)
            _, rep = simulated_parallel_fastlsa(
                a, b, dna_scheme, P=8, k=6, base_cells=16 * 1024, overhead=100
            )
            effs.append(rep.efficiency)
        # Larger problems amortise per-tile overhead (the paper's trend);
        # intermediate sizes may wobble as the recursion structure shifts.
        assert effs[2] > effs[0]
        assert effs[2] > effs[1]

    def test_wt_bound_holds_without_overhead(self, rng, dna_scheme):
        """Theorem 4 (Eq. 36) upper-bounds the simulated time."""
        a, b = random_dna(rng, 600), random_dna(rng, 600)
        for P in (2, 4, 8):
            _, rep = simulated_parallel_fastlsa(
                a, b, dna_scheme, P=P, k=6, base_cells=16 * 1024, overhead=0
            )
            assert rep.par_time <= rep.wt_bound(), (P, rep.par_time, rep.wt_bound())

    def test_overhead_reduces_speedup(self, rng, dna_scheme):
        a, b = random_dna(rng, 400), random_dna(rng, 400)
        _, r0 = simulated_parallel_fastlsa(a, b, dna_scheme, P=8, k=6, overhead=0)
        _, r1 = simulated_parallel_fastlsa(a, b, dna_scheme, P=8, k=6, overhead=2000)
        assert r1.speedup < r0.speedup
