"""Tests for linear-space local alignment (fastlsa_local)."""

from repro.align import check_alignment
from repro import AlignConfig
from repro.baselines import smith_waterman
from repro.core.local import fastlsa_local
from tests.conftest import random_dna, random_protein


class TestAgainstSmithWaterman:
    def test_scores_match_linear(self, rng, dna_scheme):
        for _ in range(15):
            a = random_dna(rng, int(rng.integers(0, 60)))
            b = random_dna(rng, int(rng.integers(0, 60)))
            fl = fastlsa_local(a, b, dna_scheme, config=AlignConfig(k=3, base_cells=64))
            sw = smith_waterman(a, b, dna_scheme)
            assert fl.score == sw.score, (a, b)

    def test_scores_match_affine(self, rng, affine_scheme):
        for _ in range(10):
            a = random_protein(rng, int(rng.integers(0, 40)))
            b = random_protein(rng, int(rng.integers(0, 40)))
            fl = fastlsa_local(a, b, affine_scheme, config=AlignConfig(k=3, base_cells=64))
            sw = smith_waterman(a, b, affine_scheme)
            assert fl.score == sw.score, (a, b)

    def test_alignment_valid_and_in_range(self, rng, dna_scheme):
        a = random_dna(rng, 80)
        b = random_dna(rng, 80)
        fl = fastlsa_local(a, b, dna_scheme, config=AlignConfig(k=4, base_cells=256))
        if fl.score > 0:
            ok, msg = check_alignment(fl.alignment, dna_scheme)
            assert ok, msg
            assert fl.alignment.seq_a.text == a[fl.a_start : fl.a_end]
            assert fl.alignment.seq_b.text == b[fl.b_start : fl.b_end]


class TestKnownAnswers:
    def test_embedded_motif(self, dna_scheme):
        fl = fastlsa_local("TTTTACGTACGTTTTT", "GGGACGTACGTGGG", dna_scheme, config=AlignConfig(k=2, base_cells=64))
        assert fl.score == 40
        assert fl.alignment.gapped_a == "ACGTACGT"

    def test_no_similarity(self, dna_scheme):
        fl = fastlsa_local("AAAA", "TTTT", dna_scheme)
        assert fl.score == 0
        assert fl.alignment.seq_a.is_empty

    def test_empty_inputs(self, dna_scheme):
        assert fastlsa_local("", "", dna_scheme).score == 0
        assert fastlsa_local("ACGT", "", dna_scheme).score == 0

    def test_identical_sequences_full_match(self, rng, dna_scheme):
        s = random_dna(rng, 50)
        fl = fastlsa_local(s, s, dna_scheme, config=AlignConfig(k=3, base_cells=128))
        assert fl.score == 5 * 50
        assert (fl.a_start, fl.a_end) == (0, 50)


class TestSpace:
    def test_linear_space(self, rng, dna_scheme):
        from repro.kernels import KernelInstruments

        n = 300
        a, b = random_dna(rng, n), random_dna(rng, n)
        inst = KernelInstruments()
        fastlsa_local(a, b, dna_scheme, config=AlignConfig(k=4, base_cells=256), instruments=inst)
        assert inst.mem.peak < (n * n) / 20
