"""Tests for the NDJSON protocol layer and the end-to-end acceptance run."""

import asyncio
import json

import repro
from repro.service import AlignmentService, ProtocolHandler, serve_tcp

def run_requests(service_kwargs, requests, handler_kwargs=None, waves=1):
    """Drive request dicts through one in-process service.

    ``waves > 1`` splits the requests into sequential groups; within a
    group everything is concurrent (gathered), like bursts of traffic.
    """

    async def go():
        svc = AlignmentService(**service_kwargs)
        handler = ProtocolHandler(svc, **(handler_kwargs or {}))
        per_wave = max(1, (len(requests) + waves - 1) // waves)
        responses = []
        async with svc:
            for start in range(0, len(requests), per_wave):
                burst = requests[start:start + per_wave]
                responses += await asyncio.gather(
                    *(handler.handle(r) for r in burst)
                )
            return responses, svc

    return asyncio.run(go())


class TestProtocolHandler:
    def test_ping(self):
        responses, _ = run_requests({"memory_cells": 100_000}, [{"op": "ping", "id": 7}])
        assert responses[0] == {
            "id": 7, "ok": True, "version": repro.__version__, "result": "pong",
        }

    def test_align_roundtrip(self):
        req = {"op": "align", "id": 1, "a": "ACGTACGT", "b": "ACGTTCGT",
               "gap_open": -6}
        responses, _ = run_requests({"memory_cells": 100_000}, [req])
        resp = responses[0]
        assert resp["ok"] and resp["id"] == 1
        result = resp["result"]
        assert result["score"] == 31
        assert len(result["gapped_a"]) == len(result["gapped_b"])
        assert result["plan"]["k"] >= 2

    def test_named_sequences(self):
        req = {"op": "align", "id": 2,
               "a": {"text": "ACGT", "name": "query1"},
               "b": {"text": "ACGA", "name": "target9"}}
        responses, _ = run_requests({"memory_cells": 100_000}, [req])
        result = responses[0]["result"]
        assert result["a_name"] == "query1" and result["b_name"] == "target9"

    def test_score_only_omits_alignment(self):
        req = {"op": "align", "id": 3, "a": "ACGT", "b": "ACGA",
               "score_only": True}
        responses, _ = run_requests({"memory_cells": 100_000}, [req])
        assert "gapped_a" not in responses[0]["result"]

    def test_batch_op_sorted_hits(self):
        req = {"op": "batch", "id": 4, "a": "ACGTACGTAC",
               "targets": ["GGGG", "ACGTACGTAC", "ACGTTCGTAC"], "mode": "local"}
        responses, svc = run_requests(
            {"memory_cells": 400_000, "max_workers": 1, "max_batch": 8}, [req]
        )
        hits = responses[0]["result"]["hits"]
        scores = [h["score"] for h in hits]
        assert scores == sorted(scores, reverse=True)
        assert svc.stats()["batches"] >= 1  # coalesced into one batch_align

    def test_stats_op(self):
        responses, _ = run_requests({"memory_cells": 100_000},
                                    [{"op": "stats", "id": 5}])
        result = responses[0]["result"]
        assert "queue_depth" in result and "cache_hits" in result

    def test_unknown_op_is_protocol_error(self):
        responses, _ = run_requests({"memory_cells": 100_000},
                                    [{"op": "explode", "id": 6}])
        assert not responses[0]["ok"]
        assert responses[0]["error"]["type"] == "ProtocolError"

    def test_unknown_matrix_rejected(self):
        responses, _ = run_requests(
            {"memory_cells": 100_000},
            [{"op": "align", "id": 8, "a": "AC", "b": "AC", "matrix": "nope"}],
        )
        assert responses[0]["error"]["type"] == "ProtocolError"

    def test_bad_sequence_rejected(self):
        responses, _ = run_requests(
            {"memory_cells": 100_000},
            [{"op": "align", "id": 9, "a": 12, "b": "AC"}],
        )
        assert not responses[0]["ok"]

    def test_every_response_carries_version(self):
        requests = [{"op": "ping", "id": 1},
                    {"op": "stats", "id": 2},
                    {"op": "align", "id": 3, "a": "ACGT", "b": "ACGA"},
                    {"op": "explode", "id": 4}]
        responses, _ = run_requests({"memory_cells": 100_000}, requests)
        assert all(r["version"] == repro.__version__ for r in responses)

    def test_align_with_pinned_config(self):
        req = {"op": "align", "id": 11, "a": "ACGTACGT" * 8, "b": "ACGTTCGT" * 8,
               "gap_open": -6, "config": {"k": 4, "base_cells": 4096}}
        responses, _ = run_requests({"memory_cells": 100_000}, [req])
        resp = responses[0]
        assert resp["ok"]
        assert resp["result"]["plan"]["k"] == 4
        assert resp["result"]["plan"]["base_cells"] == 4096

    def test_batch_with_pinned_config(self):
        req = {"op": "batch", "id": 12, "a": "ACGTACGTAC",
               "targets": ["ACGTACGTAC", "ACGTTCGTAC"], "mode": "local",
               "config": {"k": 3, "base_cells": 2048}}
        responses, _ = run_requests({"memory_cells": 400_000}, [req])
        assert responses[0]["ok"]
        assert all(h["plan"]["k"] == 3 for h in responses[0]["result"]["hits"])

    def test_bad_config_is_protocol_error(self):
        for bad in ({"kay": 4}, {"k": "four"}, {"k": 1}, "k=4"):
            responses, _ = run_requests(
                {"memory_cells": 100_000},
                [{"op": "align", "id": 13, "a": "AC", "b": "AC", "config": bad}],
            )
            resp = responses[0]
            assert not resp["ok"]
            assert resp["error"]["type"] == "ProtocolError"
            assert "config" in resp["error"]["message"]

    def test_over_budget_pinned_config_rejected(self):
        # k=2, huge base_cells: the pinned config's peak exceeds the
        # governor's per-job share → typed backpressure, not silent replan.
        req = {"op": "align", "id": 14, "a": "A" * 400, "b": "C" * 400,
               "gap_open": -6, "config": {"k": 2, "base_cells": 200_000}}
        responses, _ = run_requests({"memory_cells": 50_000}, [req])
        resp = responses[0]
        assert not resp["ok"]
        assert resp["error"]["type"] == "MemoryBudgetError"
        assert resp["error"]["backpressure"] is True

    def test_blosum_and_affine_requests(self):
        req = {"op": "align", "id": 10, "a": "HEAGAWGHEE", "b": "PAWHEAE",
               "matrix": "blosum62", "gap_open": -11, "gap_extend": -1}
        responses, _ = run_requests({"memory_cells": 200_000}, [req])
        assert responses[0]["ok"]


class TestTcpServer:
    def test_tcp_roundtrip_and_shutdown(self):
        async def go():
            svc = AlignmentService(memory_cells=200_000, max_workers=2)
            ready = asyncio.Event()
            server = asyncio.ensure_future(serve_tcp(svc, port=0, ready=ready))
            await ready.wait()
            host, port = serve_tcp.bound[:2]
            reader, writer = await asyncio.open_connection(host, port)
            for req in (
                {"op": "align", "id": 1, "a": "ACGTACGT", "b": "ACGTTCGT",
                 "gap_open": -6},
                {"op": "align", "id": 2, "a": "ACGTACGT", "b": "ACGTTCGT",
                 "gap_open": -6},
                "this is not json",
            ):
                line = req if isinstance(req, str) else json.dumps(req)
                writer.write(line.encode() + b"\n")
            await writer.drain()
            got = [json.loads(await reader.readline()) for _ in range(3)]
            writer.write(b'{"op": "shutdown", "id": 99}\n')
            await writer.drain()
            bye = json.loads(await reader.readline())
            writer.close()
            await asyncio.wait_for(server, 10)
            return got, bye

        got, bye = asyncio.run(go())
        by_id = {g["id"]: g for g in got}
        assert by_id[1]["ok"] and by_id[2]["ok"]
        # The identical request never recomputes: served from the cache if
        # request 1 already finished, deduplicated onto its in-flight
        # computation otherwise.
        assert by_id[2]["result"]["cached"] or by_id[2]["result"]["deduped"]
        assert by_id[None]["error"]["type"] == "ProtocolError"
        assert bye == {"id": 99, "ok": True, "version": repro.__version__,
                       "result": "draining"}
        assert all(g["version"] == repro.__version__ for g in got)


class TestAcceptance:
    """The ISSUE's end-to-end bar: ≥100 mixed-mode requests, one process,
    fixed global budget, cache verified by counters, typed backpressure."""

    def test_hundred_mixed_requests_under_fixed_budget(self):
        modes = ["global", "local", "semiglobal", "overlap"]
        bases = ["ACGTACGTACGTACGT", "ACGAACGTTCGTACGA", "GGGGCCCCAAAATTTT",
                 "ACGTACGTAC", "TTTTACGTACGTAAAA"]
        requests = []
        for i in range(110):  # 5 queries x 4 modes x ... → guaranteed repeats
            requests.append({
                "op": "align", "id": i,
                "a": bases[i % 5], "b": bases[(i + 1) % 5],
                "mode": modes[i % 4],
                "score_only": (i % 7 == 0),
                "gap_open": -6,
            })
        # one deliberately over-budget submission
        requests.append({"op": "align", "id": 999,
                         "a": "A" * 3000, "b": "C" * 3000, "gap_open": -6})

        responses, svc = run_requests(
            {"memory_cells": 50_000, "max_workers": 4, "cache_size": 256,
             "max_batch": 8},
            requests,
            waves=3,  # bursts: later waves repeat earlier waves' work
        )

        by_id = {r["id"]: r for r in responses}
        ok = [r for r in responses if r["ok"]]
        assert len(ok) == 110  # every sane request served

        # Typed backpressure for the over-budget job.
        rejected = by_id[999]
        assert not rejected["ok"]
        assert rejected["error"]["type"] == "MemoryBudgetError"
        assert rejected["error"]["backpressure"] is True

        stats = svc.stats()
        # Recomputation was skipped, verified by counters: the 110
        # requests cover only 5x4x2 = 40 distinct (pair, mode,
        # score-only) keys — repeats across waves hit the LRU cache,
        # repeats within a wave piggyback on the in-flight primary.
        assert stats["cache_hits"] > 0
        assert stats["cache_short_circuits"] == stats["cache_hits"]
        assert stats["jobs_completed"] == 110
        distinct = len({(r["a"], r["b"], r["mode"], r.get("score_only", False))
                        for r in requests[:110]})
        recomputed = (stats["jobs_completed"] - stats["cache_hits"]
                      - stats["dedup_hits"])
        assert recomputed == distinct

        # No job ever planned above the governor's per-job allocation,
        # and the global budget was never exceeded.
        share = svc.governor.per_job_cells
        assert share == 50_000 // 4
        rows = svc.stats_rows()
        assert len(rows) == 110
        assert all(0 < row["reserved_cells"] <= share for row in rows)
        assert svc.governor.peak_cells_in_flight <= 50_000

        # Cached and deduplicated responses carry *distinct* flags
        # end-to-end: "cached" means served from the LRU, "deduped" means
        # piggybacked on an identical in-flight computation.
        cached = [r for r in ok if r["result"]["cached"]]
        deduped = [r for r in ok if r["result"]["deduped"]]
        assert not (set(map(id, cached)) & set(map(id, deduped)))
        assert len(cached) == stats["cache_hits"]
        assert len(deduped) == stats["dedup_hits"]


class TestSearchOp:
    """The NDJSON ``search`` op: index loading, exactness, streaming."""

    @staticmethod
    def _index_file(tmp_path):
        from repro.align import Sequence
        from repro.search import CorpusIndex

        records = [
            Sequence("ACGTACGTACGTACGT", name="self"),
            Sequence("ACGTACGAACGTACGA", name="near"),
            Sequence("TTTTGGGG", name="far"),
        ]
        path = tmp_path / "corpus.flsa"
        CorpusIndex.build(records, "ACGT").save(path)
        return str(path), records

    def test_search_roundtrip(self, tmp_path):
        path, records = self._index_file(tmp_path)
        req = {"op": "search", "id": 21, "a": "ACGTACGTACGTACGT",
               "index": path, "top_k": 2, "gap_open": -6}
        responses, svc = run_requests({"memory_cells": 200_000}, [req])
        resp = responses[0]
        assert resp["ok"] and resp["id"] == 21
        result = resp["result"]
        assert [h["name"] for h in result["hits"]] == ["self", "near"]
        assert result["hits"][0]["score"] == 5 * 16  # exact self-hit
        assert result["hits"][0]["a"] == "ACGTACGTACGTACGT"
        assert result["complete"] is True
        stats = result["stats"]
        assert stats["candidates"] == 3
        assert stats["pruned"] + stats["scored"] == 3
        assert svc.stats()["searches"] == 1
        assert svc.stats()["search_candidates"] == 3

    def test_search_repeats_hit_index_cache(self, tmp_path):
        path, _ = self._index_file(tmp_path)
        reqs = [{"op": "search", "id": i, "a": "ACGTACGT", "index": path,
                 "top_k": 1, "gap_open": -6} for i in range(3)]
        responses, svc = run_requests({"memory_cells": 200_000}, reqs, waves=3)
        assert all(r["ok"] for r in responses)
        assert svc.stats()["searches"] == 3

    def test_search_missing_index_key(self):
        responses, _ = run_requests(
            {"memory_cells": 100_000},
            [{"op": "search", "id": 1, "a": "ACGT"}],
        )
        assert not responses[0]["ok"]
        assert responses[0]["error"]["type"] == "ProtocolError"
        assert "index" in responses[0]["error"]["message"]

    def test_search_unreadable_index_path(self, tmp_path):
        responses, _ = run_requests(
            {"memory_cells": 100_000},
            [{"op": "search", "id": 1, "a": "ACGT",
              "index": str(tmp_path / "nope.flsa")}],
        )
        assert not responses[0]["ok"]
        assert responses[0]["error"]["type"] == "ProtocolError"

    def test_search_corrupt_index_is_typed(self, tmp_path):
        path, _ = self._index_file(tmp_path)
        blob = bytearray((tmp_path / "corpus.flsa").read_bytes())
        blob[-2] ^= 0xFF
        (tmp_path / "corpus.flsa").write_bytes(bytes(blob))
        responses, _ = run_requests(
            {"memory_cells": 100_000},
            [{"op": "search", "id": 1, "a": "ACGT", "index": path}],
        )
        assert not responses[0]["ok"]
        assert responses[0]["error"]["type"] == "CorruptIndexError"

    def test_search_streaming_partial_frames(self, tmp_path):
        path, _ = self._index_file(tmp_path)
        req = {"op": "search", "id": 33, "a": "ACGTACGTACGTACGT",
               "index": path, "top_k": 2, "stream": True, "gap_open": -6}

        async def go():
            svc = AlignmentService(memory_cells=200_000)
            handler = ProtocolHandler(svc)
            frames = []

            async def emit(frame):
                frames.append(frame)

            async with svc:
                final = await handler.handle(req, emit=emit)
            return frames, final

        frames, final = asyncio.run(go())
        assert frames, "top-K membership changed: expected partial frames"
        for frame in frames:
            assert frame["id"] == 33 and frame["ok"] and frame["partial"]
            for hit in frame["result"]["hits"]:
                assert "a" not in hit  # snapshots carry no alignments
        assert "partial" not in final
        assert [h["name"] for h in final["result"]["hits"]] == ["self", "near"]
        assert "a" in final["result"]["hits"][0]
