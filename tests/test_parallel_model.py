"""Tests for the Eq. 28-36 analytical model."""

import pytest

from repro.errors import ConfigError
from repro.parallel import (
    TileGrid,
    alpha,
    ideal_speedup,
    pbasecase_time,
    pfillcache_time,
    phase_model,
    simulate_schedule,
    wt_bound,
)


class TestAlpha:
    def test_p1_is_one(self):
        assert alpha(1, 10, 10) == pytest.approx(1.0)

    def test_eq32_value(self):
        # alpha = (1/P)(1 + (P^2-P)/(RC))
        assert alpha(4, 12, 12) == pytest.approx(0.25 * (1 + 12 / 144))

    def test_decreases_with_tiles(self):
        assert alpha(8, 32, 32) < alpha(8, 8, 8)

    def test_validation(self):
        with pytest.raises(ConfigError):
            alpha(0, 4, 4)
        with pytest.raises(ConfigError):
            alpha(4, 0, 4)


class TestTimes:
    def test_pfillcache_eq31(self):
        assert pfillcache_time(100, 200, 4, 12, 12) == pytest.approx(
            100 * 200 * alpha(4, 12, 12)
        )

    def test_pbasecase_same_form(self):
        assert pbasecase_time(50, 50, 2, 8, 8) == pfillcache_time(50, 50, 2, 8, 8)

    def test_wt_bound_eq36(self):
        m = n = 1000
        k, P, u, v = 6, 8, 2, 3
        expected = m * n * alpha(P, 12, 18) * (6 / 5) ** 2
        assert wt_bound(m, n, k, P, u, v) == pytest.approx(expected)

    def test_wt_bound_invalid_k(self):
        with pytest.raises(ConfigError):
            wt_bound(10, 10, 1, 2, 1, 1)


class TestIdealSpeedup:
    def test_monotone_in_tiles(self):
        assert ideal_speedup(8, 64, 64) > ideal_speedup(8, 16, 16)

    def test_at_most_p(self):
        for P in (1, 2, 4, 8, 16):
            assert ideal_speedup(P, 24, 24) <= P


class TestPhaseModel:
    def test_paper_figure13_configuration(self):
        # P=8, k=6, u=2, v=3 -> R=12, C=18.
        pm = phase_model(1200, 1800, 6, 8, 2, 3)
        assert pm.R == 12 and pm.C == 18
        assert pm.total_tiles == 12 * 18 - 6
        assert pm.ramp_up_tiles == 28  # P(P-1)/2
        assert pm.steady_tiles == 12 * 18 - 64 + 8

    def test_total_bound_equals_eq31(self):
        M = N = 1200
        pm = phase_model(M, N, 6, 8, 2, 3)
        # (P-1)T + (RC-P^2+P)/P*T + (P-1)T == M*N*alpha
        assert pm.total_bound == pytest.approx(pfillcache_time(M, N, 8, 12, 18))

    def test_simulated_fill_within_phase_bound(self):
        # The greedy simulator must respect the paper's stage-wise bound.
        M = N = 600
        k, P, u, v = 6, 8, 2, 3
        from repro.core.grid import split_bounds
        from repro.parallel.tiles import refine_bounds

        rb = refine_bounds(split_bounds(0, M, k), u)
        cb = refine_bounds(split_bounds(0, N, k), v)
        skip = {
            (r, c)
            for r in range(len(rb) - 1)
            for c in range(len(cb) - 1)
            if rb[r] >= M * (k - 1) // k and cb[c] >= N * (k - 1) // k
        }
        tg = TileGrid(rb, cb, skip=skip)
        rep = simulate_schedule(tg, P)
        pm = phase_model(M, N, k, P, u, v)
        assert rep.makespan <= pm.total_bound * 1.01
