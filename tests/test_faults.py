"""Unit tests for the fault-injection layer and resilience primitives.

Covers :mod:`repro.faults` (plans, determinism, runtime scoping, no-op
overhead), :mod:`repro.core.cancel` (tokens + checkpoints) and
:mod:`repro.service.resilience` (retry policy, circuit breaker).
"""

from __future__ import annotations

import time
from random import Random

import pytest

from repro.core import CancelToken, cancel_scope, checkpoint
from repro.errors import (
    ConfigError,
    InjectedFaultError,
    JobTimeoutError,
    MemoryBudgetError,
)
from repro.faults import runtime as faults
from repro.faults.plan import (
    NAMED_PLANS,
    SITE_BASE_KERNEL,
    SITE_CACHE_GET,
    SITE_CACHE_PUT,
    SITE_TILE_FINISH,
    SITE_TILE_START,
    SITES,
    FaultPlan,
    FaultSpec,
    named_plan,
)
from repro.service.resilience import CircuitBreaker, RetryPolicy, is_transient


@pytest.fixture(autouse=True)
def _no_global_plan():
    """Chaos tests must never leak a process-global plan into each other."""
    faults.disable()
    yield
    faults.disable()


def _fire_log(plan, site, hits):
    """Drive `hits` perturbs through `site`, recording which hits fired."""
    fired = []
    for i in range(hits):
        try:
            plan.perturb(site)
        except InjectedFaultError:
            fired.append(i)
    return fired


class TestFaultSpec:
    def test_unknown_site_rejected(self):
        with pytest.raises(ConfigError):
            FaultSpec("not.a.site")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            FaultSpec(SITE_TILE_START, kind="explode")

    def test_bad_probability_rejected(self):
        with pytest.raises(ConfigError):
            FaultSpec(SITE_TILE_START, p=1.5)

    def test_unknown_error_class_rejected(self):
        with pytest.raises(ConfigError):
            FaultSpec(SITE_TILE_START, error="NoSuchError")

    def test_default_error_is_transient_injected_fault(self):
        exc = FaultSpec(SITE_TILE_START).build_error()
        assert isinstance(exc, InjectedFaultError)
        assert is_transient(exc)

    def test_non_transient_flag_respected(self):
        exc = FaultSpec(SITE_TILE_START, transient=False).build_error()
        assert not is_transient(exc)

    def test_named_error_class(self):
        exc = FaultSpec(SITE_CACHE_GET, error="MemoryBudgetError").build_error()
        assert isinstance(exc, MemoryBudgetError)


class TestFaultPlanDeterminism:
    def test_same_seed_same_fires(self):
        spec = FaultSpec(SITE_BASE_KERNEL, p=0.3, max_fires=None)
        a = _fire_log(FaultPlan([spec], seed=42), SITE_BASE_KERNEL, 200)
        b = _fire_log(FaultPlan([spec], seed=42), SITE_BASE_KERNEL, 200)
        assert a and a == b

    def test_different_seed_different_fires(self):
        spec = FaultSpec(SITE_BASE_KERNEL, p=0.3, max_fires=None)
        a = _fire_log(FaultPlan([spec], seed=1), SITE_BASE_KERNEL, 200)
        b = _fire_log(FaultPlan([spec], seed=2), SITE_BASE_KERNEL, 200)
        assert a != b

    def test_reset_replays_identically(self):
        plan = FaultPlan(
            [FaultSpec(SITE_BASE_KERNEL, p=0.4, max_fires=None)], seed=9
        )
        first = _fire_log(plan, SITE_BASE_KERNEL, 100)
        plan.reset()
        assert _fire_log(plan, SITE_BASE_KERNEL, 100) == first

    def test_max_fires_caps_injections(self):
        plan = FaultPlan([FaultSpec(SITE_TILE_START, max_fires=3)], seed=0)
        fired = _fire_log(plan, SITE_TILE_START, 50)
        assert fired == [0, 1, 2]
        assert plan.total_fired() == 3

    def test_after_skips_warmup_hits(self):
        plan = FaultPlan([FaultSpec(SITE_TILE_START, after=5, max_fires=1)], seed=0)
        assert _fire_log(plan, SITE_TILE_START, 20) == [5]

    def test_sites_isolated(self):
        plan = FaultPlan([FaultSpec(SITE_TILE_START)], seed=0)
        plan.perturb(SITE_TILE_FINISH)  # other site: no fault
        with pytest.raises(InjectedFaultError):
            plan.perturb(SITE_TILE_START)

    def test_delay_kind_sleeps(self):
        plan = FaultPlan(
            [FaultSpec(SITE_TILE_FINISH, kind="delay", delay=0.05)], seed=0
        )
        t0 = time.perf_counter()
        plan.perturb(SITE_TILE_FINISH)  # fires: sleeps, no raise
        assert time.perf_counter() - t0 >= 0.04
        plan.perturb(SITE_TILE_FINISH)  # max_fires=1 default: no-op now

    def test_corrupt_kind_mutates_via_mutator(self):
        plan = FaultPlan([FaultSpec(SITE_CACHE_PUT, kind="corrupt")], seed=0)
        assert plan.corrupt_value(SITE_CACHE_PUT, 10, lambda v: v + 1) == 11
        # spent its one fire: identity afterwards
        assert plan.corrupt_value(SITE_CACHE_PUT, 10, lambda v: v + 1) == 10

    def test_stats_counts_hits_and_fires(self):
        plan = FaultPlan([FaultSpec(SITE_TILE_START, max_fires=2)], seed=0)
        _fire_log(plan, SITE_TILE_START, 10)
        stats = plan.stats()
        assert stats[SITE_TILE_START] == {"hits": 10, "fired": 2}

    def test_round_trip_through_dict(self):
        plan = named_plan("everything", seed=13)
        clone = FaultPlan.from_dict(plan.to_dict())
        assert clone.seed == 13 and clone.name == "everything"
        assert clone.to_dict() == plan.to_dict()
        site = SITE_BASE_KERNEL
        assert _fire_log(plan, site, 150) == _fire_log(clone, site, 150)

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigError):
            FaultPlan.from_dict(
                {"faults": [{"site": SITE_TILE_START, "flavor": "spicy"}]}
            )

    def test_from_dict_rejects_empty(self):
        with pytest.raises(ConfigError):
            FaultPlan.from_dict({"faults": []})

    def test_every_named_plan_instantiates(self):
        for name in NAMED_PLANS:
            plan = named_plan(name, seed=3)
            assert plan.name == name
            for spec in plan.specs:
                assert spec.site in SITES

    def test_unknown_named_plan(self):
        with pytest.raises(ConfigError):
            named_plan("gremlins")


class TestRuntimeScoping:
    def test_inject_noop_without_plan(self):
        assert faults.current() is None
        faults.inject(SITE_TILE_START)  # must not raise

    def test_corrupt_identity_without_plan(self):
        sentinel = object()
        assert faults.corrupt(SITE_CACHE_PUT, sentinel, lambda v: None) is sentinel

    def test_chaos_scopes_and_restores(self):
        plan = FaultPlan([FaultSpec(SITE_TILE_START)], seed=0)
        with faults.chaos(plan):
            assert faults.current() is plan
            with pytest.raises(InjectedFaultError):
                faults.inject(SITE_TILE_START)
        assert faults.current() is None
        faults.inject(SITE_TILE_START)  # plan gone: no-op

    def test_chaos_sets_global_for_worker_threads(self):
        """Worker threads see the plan via the process-global fallback."""
        import threading

        plan = FaultPlan([FaultSpec(SITE_TILE_START)], seed=0)
        seen = []
        with faults.chaos(plan):
            t = threading.Thread(target=lambda: seen.append(faults.current()))
            t.start()
            t.join()
        assert seen == [plan]
        assert faults.current() is None

    def test_nested_chaos_restores_outer(self):
        outer = FaultPlan([FaultSpec(SITE_TILE_START)], seed=0)
        inner = FaultPlan([FaultSpec(SITE_TILE_FINISH)], seed=0)
        with faults.chaos(outer):
            with faults.chaos(inner):
                assert faults.current() is inner
            assert faults.current() is outer

    def test_enable_disable_global(self):
        plan = FaultPlan([FaultSpec(SITE_TILE_START)], seed=0)
        faults.enable(plan)
        assert faults.current() is plan
        faults.disable()
        assert faults.current() is None

    def test_inject_off_has_no_measurable_overhead(self):
        """Acceptance: the fault runtime is effectively free when off.

        Compares a loop of inject() calls (no plan) against the same loop
        doing a bare no-argument function call; the ratio bound is very
        generous so the assertion only catches a real regression (e.g.
        someone adding a lock or RNG draw to the off path).
        """

        def nop():
            return None

        n = 50_000
        best_base = min(
            _time_loop(nop, n) for _ in range(3)
        )
        best_inject = min(
            _time_loop(lambda: faults.inject(SITE_TILE_START), n) for _ in range(3)
        )
        assert best_inject < best_base * 20 + 0.05


def _time_loop(fn, n):
    t0 = time.perf_counter()
    for _ in range(n):
        fn()
    return time.perf_counter() - t0


class TestCancelToken:
    def test_no_deadline_never_raises(self):
        token = CancelToken()
        token.check()
        assert token.remaining() is None and not token.expired

    def test_after_deadline_raises(self):
        token = CancelToken.after(0.0)
        time.sleep(0.002)
        assert token.expired
        with pytest.raises(JobTimeoutError):
            token.check()

    def test_manual_cancel(self):
        token = CancelToken.after(60.0)
        token.cancel("operator said stop")
        with pytest.raises(JobTimeoutError, match="operator said stop"):
            token.check()

    def test_remaining_counts_down(self):
        token = CancelToken.after(10.0)
        rem = token.remaining()
        assert rem is not None and 9.0 < rem <= 10.0

    def test_checkpoint_uses_scoped_token(self):
        checkpoint()  # no token: no-op
        token = CancelToken.after(0.0)
        time.sleep(0.002)
        with cancel_scope(token):
            with pytest.raises(JobTimeoutError):
                checkpoint()
        checkpoint()  # scope exited: no-op again

    def test_cancel_scope_nests(self):
        outer = CancelToken()
        inner = CancelToken()
        inner.cancel()
        with cancel_scope(outer):
            with cancel_scope(inner):
                with pytest.raises(JobTimeoutError):
                    checkpoint()
            checkpoint()  # outer token is healthy

    def test_fastlsa_honours_cancel_token(self, dna_scheme):
        """A cancelled token stops the recursion at the next checkpoint."""
        from repro.core import AlignConfig, fastlsa
        from repro.workloads import dna_pair

        a, b = dna_pair(200, seed=1)
        token = CancelToken()
        token.cancel("test cancel")
        with cancel_scope(token):
            with pytest.raises(JobTimeoutError):
                fastlsa(a, b, dna_scheme, config=AlignConfig(k=2, base_cells=256))


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ConfigError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ConfigError):
            RetryPolicy(multiplier=0.5)

    def test_should_retry_transient_within_budget(self):
        policy = RetryPolicy(max_retries=2)
        exc = InjectedFaultError("x", transient=True)
        assert policy.should_retry(exc, 0)
        assert policy.should_retry(exc, 1)
        assert not policy.should_retry(exc, 2)

    def test_should_not_retry_permanent(self):
        policy = RetryPolicy(max_retries=5)
        assert not policy.should_retry(ValueError("nope"), 0)
        assert not policy.should_retry(
            InjectedFaultError("x", transient=False), 0
        )

    def test_connection_errors_are_transient(self):
        assert is_transient(ConnectionResetError())
        assert is_transient(BrokenPipeError())
        assert not is_transient(OSError("disk on fire"))

    def test_delay_is_seeded_and_bounded(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=0.5)
        a = [policy.delay(i, Random(7)) for i in range(5)]
        b = [policy.delay(i, Random(7)) for i in range(5)]
        assert a == b  # deterministic under a pinned RNG
        for i, d in enumerate(a):
            assert 0.0 <= d <= min(0.5, 0.1 * 2.0 ** i)

    def test_zero_retries_disables(self):
        policy = RetryPolicy(max_retries=0)
        assert not policy.should_retry(InjectedFaultError("x"), 0)


class TestCircuitBreaker:
    def _make(self, threshold=3, reset_after=10.0):
        clock = {"t": 0.0}
        breaker = CircuitBreaker(
            failure_threshold=threshold,
            reset_after=reset_after,
            clock=lambda: clock["t"],
        )
        return breaker, clock

    def test_opens_after_threshold(self):
        breaker, _ = self._make(threshold=3)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED and breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()
        assert breaker.fast_fails == 1

    def test_success_resets_streak(self):
        breaker, _ = self._make(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_trial_success_closes(self):
        breaker, clock = self._make(threshold=1, reset_after=10.0)
        breaker.record_failure()
        assert not breaker.allow()
        clock["t"] = 10.0
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.allow()  # the trial
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_trial_failure_reopens(self):
        breaker, clock = self._make(threshold=5, reset_after=10.0)
        for _ in range(5):
            breaker.record_failure()
        clock["t"] = 10.0
        assert breaker.allow()  # half-open trial
        breaker.record_failure()  # single failure reopens from half-open
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.opens == 2

    def test_stats_shape(self):
        breaker, _ = self._make()
        stats = breaker.stats()
        assert set(stats) == {
            "state", "consecutive_failures", "opens", "fast_fails",
            "trial_inflight",
        }


class TestFaultsInCorePaths:
    """The instrumented core paths actually consult the plan."""

    def test_base_kernel_site_fires_in_fastlsa(self, dna_scheme):
        from repro.core import AlignConfig, fastlsa
        from repro.workloads import dna_pair

        a, b = dna_pair(80, seed=2)
        plan = FaultPlan([FaultSpec(SITE_BASE_KERNEL)], seed=0)
        with faults.chaos(plan):
            with pytest.raises(InjectedFaultError):
                fastlsa(a, b, dna_scheme, config=AlignConfig(k=2, base_cells=256))
        assert plan.total_fired() == 1

    def test_tile_sites_fire_in_wavefront(self, dna_scheme):
        from repro.core import AlignConfig
        from repro.parallel import parallel_fastlsa
        from repro.workloads import dna_pair

        a, b = dna_pair(120, seed=3)
        plan = FaultPlan([FaultSpec(SITE_TILE_START, max_fires=1)], seed=0)
        with faults.chaos(plan):
            with pytest.raises(InjectedFaultError):
                parallel_fastlsa(
                    a, b, dna_scheme, P=2,
                    config=AlignConfig(k=4, base_cells=64),
                )
        assert plan.stats()[SITE_TILE_START]["fired"] == 1

    def test_wavefront_correct_after_transient_tile_fault(self, dna_scheme):
        from repro.baselines import needleman_wunsch
        from repro.core import AlignConfig
        from repro.parallel import parallel_fastlsa
        from repro.workloads import dna_pair

        a, b = dna_pair(120, seed=3)
        want = needleman_wunsch(a, b, dna_scheme).score
        plan = FaultPlan([FaultSpec(SITE_TILE_START, max_fires=1)], seed=0)
        cfg = AlignConfig(k=4, base_cells=64)
        with faults.chaos(plan):
            with pytest.raises(InjectedFaultError):
                parallel_fastlsa(a, b, dna_scheme, P=2, config=cfg)
            # The "retry" (plan exhausted): same inputs now succeed, and
            # the answer is the optimal one — no state leaked from the
            # aborted run.
            result = parallel_fastlsa(a, b, dna_scheme, P=2, config=cfg)
        assert result.score == want

    def test_clean_run_after_plan_exhausted(self, dna_scheme):
        """Once max_fires is spent, the same plan lets work succeed."""
        from repro.baselines import needleman_wunsch
        from repro.core import AlignConfig, fastlsa
        from repro.workloads import dna_pair

        a, b = dna_pair(80, seed=4)
        want = needleman_wunsch(a, b, dna_scheme).score
        plan = FaultPlan([FaultSpec(SITE_BASE_KERNEL, max_fires=1)], seed=0)
        with faults.chaos(plan):
            with pytest.raises(InjectedFaultError):
                fastlsa(a, b, dna_scheme, config=AlignConfig(k=2, base_cells=256))
            result = fastlsa(a, b, dna_scheme, config=AlignConfig(k=2, base_cells=256))
        assert result.score == want
