"""Tests for repro.scoring.matrices."""

import numpy as np
import pytest

from repro.errors import AlphabetError, ScoringError
from repro.scoring import (
    SubstitutionMatrix,
    identity_matrix,
    match_mismatch_matrix,
)


class TestConstruction:
    def test_basic(self):
        m = SubstitutionMatrix("AB", np.array([[1, 0], [0, 1]]))
        assert m.size == 2
        assert m.score("A", "A") == 1
        assert m.score("A", "B") == 0

    def test_table_becomes_int64_readonly(self):
        m = SubstitutionMatrix("AB", [[1, 0], [0, 1]])
        assert m.table.dtype == np.int64
        with pytest.raises(ValueError):
            m.table[0, 0] = 5

    def test_empty_alphabet_rejected(self):
        with pytest.raises(ScoringError):
            SubstitutionMatrix("", np.zeros((0, 0)))

    def test_duplicate_symbols_rejected(self):
        with pytest.raises(ScoringError):
            SubstitutionMatrix("AA", np.zeros((2, 2)))

    def test_non_square_rejected(self):
        with pytest.raises(ScoringError):
            SubstitutionMatrix("AB", np.zeros((2, 3)))

    def test_size_mismatch_rejected(self):
        with pytest.raises(ScoringError):
            SubstitutionMatrix("ABC", np.zeros((2, 2)))

    def test_non_integer_rejected(self):
        with pytest.raises(ScoringError):
            SubstitutionMatrix("AB", np.array([[1.5, 0], [0, 1]]))

    def test_integer_valued_floats_accepted(self):
        m = SubstitutionMatrix("AB", np.array([[1.0, 0.0], [0.0, 2.0]]))
        assert m.score("B", "B") == 2

    def test_from_table_symmetry_enforced(self):
        with pytest.raises(ScoringError):
            SubstitutionMatrix.from_table("AB", [[1, 2], [3, 1]])

    def test_from_table_symmetry_can_be_skipped(self):
        m = SubstitutionMatrix.from_table("AB", [[1, 2], [3, 1]], require_symmetric=False)
        assert m.score("A", "B") == 2
        assert m.score("B", "A") == 3

    def test_from_pairs(self):
        m = SubstitutionMatrix.from_pairs("ABC", {("A", "B"): 5, ("C", "C"): 7}, default=-1)
        assert m.score("A", "B") == 5
        assert m.score("B", "A") == 5
        assert m.score("C", "C") == 7
        assert m.score("A", "C") == -1

    def test_from_pairs_outside_alphabet(self):
        with pytest.raises(ScoringError):
            SubstitutionMatrix.from_pairs("AB", {("A", "Z"): 1})


class TestEncoding:
    def test_encode_decode_roundtrip(self):
        m = identity_matrix("ACGT")
        codes = m.encode("GATTACA")
        assert m.decode(codes) == "GATTACA"

    def test_encode_dtype(self):
        m = identity_matrix("ACGT")
        assert m.encode("ACGT").dtype == np.int16

    def test_encode_empty(self):
        m = identity_matrix("ACGT")
        assert len(m.encode("")) == 0

    def test_encode_unknown_symbol(self):
        m = identity_matrix("ACGT")
        with pytest.raises(AlphabetError, match="'X'"):
            m.encode("ACXGT")

    def test_score_unknown_symbol(self):
        m = identity_matrix("ACGT")
        with pytest.raises(AlphabetError):
            m.score("A", "Z")

    def test_row_profile(self):
        m = match_mismatch_matrix(match=5, mismatch=-4)
        b = m.encode("ACGT")
        prof = m.row_profile(int(m.encode("C")[0]), b)
        assert list(prof) == [-4, 5, -4, -4]


class TestHelpers:
    def test_identity_matrix(self):
        m = identity_matrix("XYZ", match=3, mismatch=-1)
        assert m.score("X", "X") == 3
        assert m.score("X", "Y") == -1

    def test_match_mismatch_defaults(self):
        m = match_mismatch_matrix()
        assert m.alphabet == "ACGT"
        assert m.score("A", "A") == 5
        assert m.score("A", "G") == -4

    def test_min_max_score(self):
        m = match_mismatch_matrix(match=5, mismatch=-4)
        assert m.min_score() == -4
        assert m.max_score() == 5
