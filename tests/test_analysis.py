"""Tests for analysis helpers and the experiment recorder."""

import json

import pytest

from repro.analysis import (
    ExperimentRecorder,
    cells_per_second,
    efficiency,
    format_rows,
    format_table,
    geomean,
    ops_ratio,
    speedup,
)
from repro.errors import ConfigError


class TestMetrics:
    def test_speedup(self):
        assert speedup(10.0, 2.5) == 4.0

    def test_speedup_invalid(self):
        with pytest.raises(ConfigError):
            speedup(1.0, 0.0)

    def test_efficiency(self):
        assert efficiency(8.0, 2.0, 4) == 1.0

    def test_geomean(self):
        assert geomean([1, 4]) == pytest.approx(2.0)
        assert geomean([2, 2, 2]) == pytest.approx(2.0)

    def test_geomean_invalid(self):
        with pytest.raises(ConfigError):
            geomean([])
        with pytest.raises(ConfigError):
            geomean([1, -1])

    def test_ops_ratio(self):
        assert ops_ratio(200, 10, 10) == 2.0

    def test_cells_per_second(self):
        assert cells_per_second(1000, 2.0) == 500.0


class TestTables:
    def test_format_table_alignment(self):
        out = format_table(["name", "value"], [["a", 1], ["bbbb", 22]])
        lines = out.split("\n")
        assert len({len(l) for l in lines}) == 1  # rectangular

    def test_title(self):
        out = format_table(["x"], [[1]], title="My Table")
        assert out.startswith("== My Table ==")

    def test_float_formatting(self):
        out = format_table(["v"], [[3.14159]], float_digits=2)
        assert "3.14" in out

    def test_scientific_for_extremes(self):
        out = format_table(["v"], [[1.5e9]])
        assert "e+" in out

    def test_format_rows_from_dicts(self):
        out = format_rows([{"a": 1, "b": 2}, {"a": 3, "b": 4}])
        assert "a" in out and "3" in out

    def test_format_rows_empty(self):
        assert "no rows" in format_rows([], title="t")

    def test_bool_rendering(self):
        out = format_table(["ok"], [[True], [False]])
        assert "yes" in out and "no" in out


class TestRecorder:
    def test_add_and_save(self, tmp_path):
        rec = ExperimentRecorder("exp1", out_dir=str(tmp_path))
        rec.add(x=1, y=2.5)
        rec.add(x=2, y=3.5)
        path = rec.save()
        with open(path) as fh:
            payload = json.load(fh)
        assert payload["experiment"] == "exp1"
        assert len(payload["rows"]) == 2

    def test_numpy_values_coerced(self, tmp_path):
        import numpy as np

        rec = ExperimentRecorder("exp2", out_dir=str(tmp_path))
        rec.add(v=np.int64(5), w=np.float64(1.5), arr=[np.int32(1)])
        rec.save()
        with open(rec.path) as fh:
            payload = json.load(fh)
        assert payload["rows"][0] == {"v": 5, "w": 1.5, "arr": [1]}

    def test_load_roundtrip(self, tmp_path):
        rec = ExperimentRecorder("exp3", out_dir=str(tmp_path))
        rec.add(a=1)
        rec.save()
        loaded = ExperimentRecorder.load("exp3", out_dir=str(tmp_path))
        assert loaded.rows == [{"a": 1}]

    def test_load_missing_returns_none(self, tmp_path):
        assert ExperimentRecorder.load("nothere", out_dir=str(tmp_path)) is None

    def test_extend(self, tmp_path):
        rec = ExperimentRecorder("exp4", out_dir=str(tmp_path))
        rec.extend([{"a": 1}, {"a": 2}])
        assert len(rec.rows) == 2
