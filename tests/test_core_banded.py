"""Tests for banded global alignment."""

import pytest

from repro.align import check_alignment
from repro.baselines import needleman_wunsch
from repro.core import banded_align, banded_align_auto
from repro.errors import ConfigError
from repro.workloads import dna_pair
from tests.conftest import random_dna


class TestExactness:
    def test_full_band_is_exact(self, rng, dna_scheme):
        for _ in range(20):
            la, lb = int(rng.integers(1, 40)), int(rng.integers(1, 40))
            a, b = random_dna(rng, la), random_dna(rng, lb)
            res = banded_align(a, b, dna_scheme, width=max(la, lb))
            nw = needleman_wunsch(a, b, dna_scheme)
            assert res.alignment.score == nw.score, (a, b)
            assert check_alignment(res.alignment, dna_scheme)[0]

    def test_narrow_band_is_lower_bound(self, rng, dna_scheme):
        for _ in range(15):
            a, b = random_dna(rng, 50), random_dna(rng, 50)
            res = banded_align(a, b, dna_scheme, width=3)
            nw = needleman_wunsch(a, b, dna_scheme)
            assert res.alignment.score <= nw.score
            assert check_alignment(res.alignment, dna_scheme)[0]

    def test_similar_sequences_exact_in_narrow_band(self, dna_scheme):
        a, b = dna_pair(500, divergence=0.05, seed=8)
        res = banded_align(a, b, dna_scheme, width=30)
        nw = needleman_wunsch(a, b, dna_scheme)
        assert res.alignment.score == nw.score

    def test_identical_sequences_width_one(self, rng, dna_scheme):
        s = random_dna(rng, 100)
        res = banded_align(s, s, dna_scheme, width=1)
        assert res.alignment.score == 5 * 100
        assert not res.touches_edge


class TestAuto:
    def test_converges_to_exact(self, dna_scheme):
        a, b = dna_pair(400, divergence=0.15, seed=4)
        res = banded_align_auto(a, b, dna_scheme, initial_width=4)
        nw = needleman_wunsch(a, b, dna_scheme)
        assert res.alignment.score == nw.score

    def test_max_width_guarantees_exact(self, rng, dna_scheme):
        a, b = random_dna(rng, 60), random_dna(rng, 45)
        res = banded_align_auto(a, b, dna_scheme, initial_width=2)
        nw = needleman_wunsch(a, b, dna_scheme)
        assert res.alignment.score == nw.score

    def test_cost_savings(self, dna_scheme):
        n = 1500
        a, b = dna_pair(n, divergence=0.05, seed=12)
        res = banded_align_auto(a, b, dna_scheme, initial_width=8)
        # The whole doubling sequence should stay far below m*n cells.
        assert res.alignment.stats.cells_computed < 0.2 * n * n


class TestAffine:
    def test_full_band_is_exact(self, rng, affine_dna_scheme):
        for _ in range(15):
            la, lb = int(rng.integers(1, 35)), int(rng.integers(1, 35))
            a, b = random_dna(rng, la), random_dna(rng, lb)
            res = banded_align(a, b, affine_dna_scheme, width=max(la, lb))
            nw = needleman_wunsch(a, b, affine_dna_scheme)
            assert res.alignment.score == nw.score, (a, b)
            assert check_alignment(res.alignment, affine_dna_scheme)[0]

    def test_narrow_band_is_lower_bound(self, rng, affine_dna_scheme):
        for _ in range(10):
            a, b = random_dna(rng, 40), random_dna(rng, 40)
            res = banded_align(a, b, affine_dna_scheme, width=3)
            nw = needleman_wunsch(a, b, affine_dna_scheme)
            assert res.alignment.score <= nw.score
            assert check_alignment(res.alignment, affine_dna_scheme)[0]

    def test_auto_converges(self, affine_dna_scheme):
        a, b = dna_pair(400, divergence=0.1, seed=21)
        res = banded_align_auto(a, b, affine_dna_scheme, initial_width=4)
        nw = needleman_wunsch(a, b, affine_dna_scheme)
        assert res.alignment.score == nw.score

    def test_long_gap_run_crosses_band_rows(self, affine_dna_scheme):
        # A run longer than the band height must still be representable
        # (it rides the band edge diagonally).
        a = "ACGT" + "G" * 12 + "ACGT"
        b = "ACGTACGT"
        res = banded_align(a, b, affine_dna_scheme, width=20)
        nw = needleman_wunsch(a, b, affine_dna_scheme)
        assert res.alignment.score == nw.score

    def test_empty_inputs(self, affine_dna_scheme):
        assert banded_align("", "ACG", affine_dna_scheme, width=2).alignment.score \
            == affine_dna_scheme.gap.cost(3)
        assert banded_align("", "", affine_dna_scheme, width=2).alignment.score == 0

    def test_bad_width_rejected(self, affine_dna_scheme):
        with pytest.raises(ConfigError):
            banded_align("AC", "AC", affine_dna_scheme, width=0)


class TestWidthClamp:
    """Widths >= min(m, n) cover the whole matrix: the fill must cross
    over to the dense full-DP path (tier="full") instead of paying banded
    bookkeeping for zero pruning — and the result is trivially certified."""

    def test_oversized_width_uses_full_tier(self, rng, dna_scheme):
        a, b = random_dna(rng, 30), random_dna(rng, 40)
        for width in (30, 35, 10_000):
            res = banded_align(a, b, dna_scheme, width=width)
            assert res.tier == "full"
            assert res.certified
            assert not res.touches_edge
            assert res.alignment.score == needleman_wunsch(a, b, dna_scheme).score

    def test_just_under_clamp_stays_banded(self, rng, dna_scheme):
        a, b = random_dna(rng, 30), random_dna(rng, 40)
        res = banded_align(a, b, dna_scheme, width=29)
        assert res.tier == "banded"

    def test_oversized_width_affine(self, rng, affine_dna_scheme):
        a, b = random_dna(rng, 25), random_dna(rng, 25)
        res = banded_align(a, b, affine_dna_scheme, width=25)
        assert res.tier == "full"
        assert res.certified
        assert res.alignment.score == \
            needleman_wunsch(a, b, affine_dna_scheme).score

    def test_exact_terminates_via_clamp_on_unrelated_pair(self, rng, dna_scheme):
        # Unrelated sequences never certify in a width-1 band; the
        # verify-or-widen loop must keep doubling and still terminate —
        # via the certificate at some wider band, or the full-DP clamp.
        from repro.core.banded import banded_align_exact

        a, b = random_dna(rng, 64), random_dna(rng, 64)
        res = banded_align_exact(a, b, dna_scheme, band=1)
        assert res.certified
        assert res.attempts > 1
        assert res.tier in ("banded", "full")
        assert res.alignment.score == needleman_wunsch(a, b, dna_scheme).score

    def test_auto_with_oversized_initial_width_clamps(self, rng, dna_scheme):
        a, b = random_dna(rng, 20), random_dna(rng, 20)
        res = banded_align_auto(a, b, dna_scheme, initial_width=50)
        assert res.tier == "full"
        assert res.certified
        assert res.alignment.score == needleman_wunsch(a, b, dna_scheme).score

    def test_tiny_inputs_always_clamp(self, dna_scheme):
        res = banded_align("A", "ACGT", dna_scheme, width=5)
        assert res.tier == "full"
        assert res.alignment.score == \
            needleman_wunsch("A", "ACGT", dna_scheme).score


class TestValidation:

    def test_bad_width_rejected(self, dna_scheme):
        with pytest.raises(ConfigError):
            banded_align("AC", "AC", dna_scheme, width=0)

    def test_skewed_lengths(self, rng, dna_scheme):
        # dmin/dmax handle length differences larger than the width.
        a, b = random_dna(rng, 10), random_dna(rng, 60)
        res = banded_align(a, b, dna_scheme, width=2)
        assert check_alignment(res.alignment, dna_scheme)[0]

    def test_empty_sequences(self, dna_scheme):
        res = banded_align("", "ACG", dna_scheme, width=2)
        assert res.alignment.score == -18
        res = banded_align("", "", dna_scheme, width=2)
        assert res.alignment.score == 0

    def test_touches_edge_flag(self, dna_scheme):
        # A width-1 band on this divergent pair forces the traced path
        # onto the band boundary (and the banded score is suboptimal).
        res = banded_align("GGAACTCTCATTA", "AGCGATCTTGAT", dna_scheme, width=1)
        assert res.touches_edge
        nw = needleman_wunsch("GGAACTCTCATTA", "AGCGATCTTGAT", dna_scheme)
        assert res.alignment.score < nw.score
