"""Tests for repro.kernels.linear against the pure-Python reference."""

import numpy as np
import pytest

from repro.kernels import OpCounter, boundary_vectors, sweep_last_row_col, sweep_matrix
from repro.kernels.reference import ref_matrix_linear
from tests.conftest import random_dna


class TestBoundaryVectors:
    def test_values(self):
        row, col = boundary_vectors(2, 3, -10)
        assert list(row) == [0, -10, -20, -30]
        assert list(col) == [0, -10, -20]

    def test_zero_length(self):
        row, col = boundary_vectors(0, 0, -5)
        assert list(row) == [0] and list(col) == [0]


class TestSweepMatrix:
    def test_matches_reference_fresh(self, rng, dna_scheme):
        table = dna_scheme.matrix.table
        for _ in range(30):
            M, N = rng.integers(0, 15, 2)
            a = dna_scheme.encode(random_dna(rng, M))
            b = dna_scheme.encode(random_dna(rng, N))
            fr, fc = boundary_vectors(M, N, -6)
            H = sweep_matrix(a, b, table, -6, fr, fc)
            Href = ref_matrix_linear(a, b, table, -6)
            assert np.array_equal(H, Href)

    def test_matches_reference_arbitrary_boundaries(self, rng, dna_scheme):
        table = dna_scheme.matrix.table
        for _ in range(30):
            M, N = rng.integers(1, 12, 2)
            a = dna_scheme.encode(random_dna(rng, M))
            b = dna_scheme.encode(random_dna(rng, N))
            fr = rng.integers(-50, 50, N + 1).astype(np.int64)
            fc = rng.integers(-50, 50, M + 1).astype(np.int64)
            fc[0] = fr[0]
            H = sweep_matrix(a, b, table, -4, fr, fc)
            Href = ref_matrix_linear(a, b, table, -4, fr, fc)
            assert np.array_equal(H, Href)

    def test_boundary_shape_checked(self, dna_scheme):
        a = dna_scheme.encode("ACG")
        b = dna_scheme.encode("AC")
        with pytest.raises(ValueError):
            sweep_matrix(a, b, dna_scheme.matrix.table, -6,
                         np.zeros(5, dtype=np.int64), np.zeros(4, dtype=np.int64))

    def test_counter(self, dna_scheme):
        a = dna_scheme.encode("ACGT")
        b = dna_scheme.encode("ACG")
        fr, fc = boundary_vectors(4, 3, -6)
        c = OpCounter()
        sweep_matrix(a, b, dna_scheme.matrix.table, -6, fr, fc, counter=c)
        assert c.cells == 12


class TestSweepLastRowCol:
    def test_edges_match_matrix(self, rng, dna_scheme):
        table = dna_scheme.matrix.table
        for _ in range(30):
            M, N = rng.integers(0, 20, 2)
            a = dna_scheme.encode(random_dna(rng, M))
            b = dna_scheme.encode(random_dna(rng, N))
            fr, fc = boundary_vectors(M, N, -6)
            H = ref_matrix_linear(a, b, table, -6)
            lr, lc = sweep_last_row_col(a, b, table, -6, fr, fc)
            assert np.array_equal(lr, H[-1])
            assert np.array_equal(lc, H[:, -1])

    def test_degenerate_m0(self, dna_scheme):
        b = dna_scheme.encode("ACGT")
        fr, fc = boundary_vectors(0, 4, -6)
        lr, lc = sweep_last_row_col(np.empty(0, np.int16), b, dna_scheme.matrix.table, -6, fr, fc)
        assert np.array_equal(lr, fr)
        assert list(lc) == [fr[-1]]

    def test_degenerate_n0(self, dna_scheme):
        a = dna_scheme.encode("ACGT")
        fr, fc = boundary_vectors(4, 0, -6)
        lr, lc = sweep_last_row_col(a, np.empty(0, np.int16), dna_scheme.matrix.table, -6, fr, fc)
        assert np.array_equal(lc, fc)
        assert list(lr) == [fc[-1]]

    def test_corner_consistency(self, rng, dna_scheme):
        a = dna_scheme.encode(random_dna(rng, 7))
        b = dna_scheme.encode(random_dna(rng, 9))
        fr, fc = boundary_vectors(7, 9, -6)
        lr, lc = sweep_last_row_col(a, b, dna_scheme.matrix.table, -6, fr, fc)
        assert lr[-1] == lc[-1]  # both are H[M, N]
        assert lr[0] == fc[-1]
        assert lc[0] == fr[-1]

    def test_reverse_symmetry(self, rng, dna_scheme):
        # Score of (a, b) equals score of (reversed a, reversed b).
        table = dna_scheme.matrix.table
        a = dna_scheme.encode(random_dna(rng, 13))
        b = dna_scheme.encode(random_dna(rng, 17))
        fr, fc = boundary_vectors(13, 17, -6)
        lr1, _ = sweep_last_row_col(a, b, table, -6, fr, fc)
        lr2, _ = sweep_last_row_col(a[::-1], b[::-1], table, -6, fr, fc)
        assert lr1[-1] == lr2[-1]
