"""Degradation-ladder edge cases (PR 9 satellite).

:func:`repro.core.planner.degrade_plan` is the service's graceful-
degradation mechanism; these tests pin its contract at the edges —
affine + ends-free jobs, the memory floor, the full-matrix→fastlsa rung
— and the scheduler-side invariants added in PR 9: knob preservation
across a downgrade, the calibrated beats-serial re-consult, and the
governor-reservation invariant (a degraded plan, arena included, never
outgrows the cells already reserved).
"""

from __future__ import annotations

import asyncio

from repro.core.config import MIN_BASE_CELLS, AlignConfig, FastLSAConfig
from repro.core.modes import semiglobal_align
from repro.core.planner import (
    Plan,
    arena_cells,
    degrade_plan,
    fastlsa_peak_cells,
    ops_ratio_bound,
    plan_alignment,
    resolve_backend,
)
from repro.service import AlignmentService
from repro.service.jobs import AlignRequest, Job
from repro.tune import synthetic_profile
from repro.workloads import dna_pair


def _walk_ladder(plan, m, n, affine):
    """All rungs from ``plan`` down to the floor."""
    rungs = [plan]
    while True:
        nxt = degrade_plan(rungs[-1], m, n, affine=affine)
        if nxt is None:
            return rungs
        rungs.append(nxt)


class TestLadder:
    def test_affine_ladder_strictly_decreases_peak(self):
        m = n = 6_000
        plan = plan_alignment(m, n, 600_000, affine=True)
        rungs = _walk_ladder(plan, m, n, affine=True)
        assert len(rungs) >= 2
        peaks = [r.predicted_peak_cells for r in rungs]
        assert peaks == sorted(peaks, reverse=True)
        assert len(set(peaks)) == len(peaks)  # strict, every rung
        for r in rungs[1:]:
            assert r.config.k >= 2
            assert r.config.base_cells >= MIN_BASE_CELLS

    def test_floor_is_none_not_a_loop(self):
        m = n = 4_000
        floor = Plan(
            method="fastlsa",
            config=FastLSAConfig(k=2, base_cells=MIN_BASE_CELLS),
            memory_cells=100_000,
            predicted_peak_cells=fastlsa_peak_cells(m, n, 2, MIN_BASE_CELLS, False),
            predicted_ops_ratio=ops_ratio_bound(2),
        )
        assert degrade_plan(floor, m, n) is None

    def test_full_matrix_rung_switches_method(self):
        plan = plan_alignment(500, 500, 10_000_000)
        assert plan.method == "full-matrix"
        nxt = degrade_plan(plan, 500, 500)
        assert nxt is not None and nxt.method == "fastlsa"
        assert nxt.predicted_peak_cells < plan.predicted_peak_cells

    def test_degraded_config_still_aligns_ends_free_affine(self, affine_dna_scheme):
        """A floor-rung config must still produce the exact ends-free
        alignment (degradation trades speed/memory, never correctness)."""
        a, b = dna_pair(300, divergence=0.2, seed=5)
        plan = plan_alignment(len(a), len(b), 200_000, affine=True)
        floor = _walk_ladder(plan, len(a), len(b), affine=True)[-1]
        ref = semiglobal_align(a, b, affine_dna_scheme)
        got = semiglobal_align(
            a, b, affine_dna_scheme,
            config=AlignConfig(floor.config.k, floor.config.base_cells),
        )
        assert got.score == ref.score
        assert (got.alignment.gapped_a, got.alignment.gapped_b) == (
            ref.alignment.gapped_a, ref.alignment.gapped_b
        )


def _lead_job(m, n, scheme, config, reserved=None):
    a, b = dna_pair(m, divergence=0.2, seed=1)
    plan = Plan(
        method="fastlsa",
        config=config,
        memory_cells=10_000_000,
        predicted_peak_cells=fastlsa_peak_cells(
            m, n, config.k, config.base_cells, False
        ),
        predicted_ops_ratio=ops_ratio_bound(config.k),
    )
    job = Job(request=AlignRequest(a=a, b=b, scheme=scheme), plan=plan, future=None)
    job.reserved_cells = (
        reserved if reserved is not None else plan.predicted_peak_cells
    )
    return job


class TestSchedulerCarryConfig:
    """PR 9: what survives a downgrade, and what must never grow."""

    def _carry(self, tune, job):
        async def run():
            svc = AlignmentService(memory_cells=50_000_000, tune=tune)
            next_plan = degrade_plan(
                job.plan, len(job.request.a), len(job.request.b), affine=False
            )
            assert next_plan is not None
            return svc._carry_config(job, next_plan)

        return asyncio.run(run())

    def test_knobs_survive_downgrade(self):
        scheme_cfg = AlignConfig(
            k=8, base_cells=65_536, band="auto", kernel="numpy", tune="off"
        )
        job = _lead_job(2_000, 2_000, _scheme(), scheme_cfg)
        plan, dropped = self._carry("off", job)
        assert dropped is None
        assert plan.config.band == "auto"
        assert plan.config.kernel == "numpy"
        assert plan.config.tune == "off"
        assert plan.config.k < 8 or plan.config.base_cells < 65_536

    def test_backend_dropped_without_profile(self):
        cfg = AlignConfig(k=8, base_cells=65_536, backend="threads", max_workers=2)
        job = _lead_job(2_000, 2_000, _scheme(), cfg)
        plan, dropped = self._carry("off", job)
        assert dropped == "threads"
        assert plan.config.backend is None

    def test_backend_dropped_when_curve_loses_to_serial(self):
        # slow-1cpu: every parallel point is measured below serial, so the
        # re-consult must shed the backend at the first downgrade.
        cfg = AlignConfig(k=8, base_cells=65_536, backend="processes", max_workers=2)
        job = _lead_job(2_000, 2_000, _scheme(), cfg)
        plan, dropped = self._carry(synthetic_profile("slow-1cpu"), job)
        assert dropped == "processes"
        assert plan.config.backend is None

    def test_backend_kept_when_curve_still_wins(self):
        cfg = AlignConfig(k=8, base_cells=65_536, backend="threads", max_workers=2)
        job = _lead_job(3_000, 3_000, _scheme(), cfg, reserved=10_000_000)
        plan, dropped = self._carry(synthetic_profile("fast-8cpu"), job)
        assert dropped is None
        assert plan.config.backend == "threads"
        assert plan.config.max_workers == 2

    def test_reservation_invariant_arena_included(self):
        """A kept processes backend bills its arena inside the cells the
        job already reserved; if it cannot fit, the backend is shed."""
        m = n = 3_000
        cfg = AlignConfig(k=8, base_cells=65_536, backend="processes", max_workers=2)
        profile = synthetic_profile("fast-8cpu")

        roomy = _lead_job(m, n, _scheme(), cfg, reserved=50_000_000)
        plan, dropped = self._carry(profile, roomy)
        assert dropped is None and plan.config.backend == "processes"
        _, workers = resolve_backend(plan.config)
        arena = arena_cells(m, n, plan.config.k, workers, affine=False)
        assert plan.predicted_peak_cells >= arena  # arena is billed
        assert plan.predicted_peak_cells <= roomy.reserved_cells

        tight = _lead_job(m, n, _scheme(), cfg, reserved=1)
        plan, dropped = self._carry(profile, tight)
        assert dropped == "processes"
        assert plan.config.backend is None

    def test_downgrade_label_records_shed_backend(self):
        async def run():
            svc = AlignmentService(
                memory_cells=50_000_000,
                tune=synthetic_profile("slow-1cpu"),
            )
            cfg = AlignConfig(
                k=8, base_cells=65_536, backend="threads", max_workers=2
            )
            job = _lead_job(2_000, 2_000, _scheme(), cfg)
            assert svc._degrade_group([job], "memory_budget")
            return job

        job = asyncio.run(run())
        assert len(job.downgrades) == 1
        assert "memory_budget" in job.downgrades[0]
        assert "backend:threads->serial" in job.downgrades[0]
        assert job.plan.config.backend is None


def _scheme():
    from repro.scoring import ScoringScheme, dna_simple, linear_gap

    return ScoringScheme(dna_simple(), linear_gap(-6))


class TestGovernorSurfacesClampNotes:
    """resolve_backend's worker clamp reaches the job's downgrade list."""

    def test_pinned_admit_records_clamp(self, dna_scheme):
        from repro.core.planner import worker_cap
        from repro.service.governor import MemoryGovernor

        cap = worker_cap()
        gov = MemoryGovernor(total_cells=50_000_000, max_workers=1)
        plan = gov.admit(
            500, 500,
            config=AlignConfig(backend="threads", max_workers=cap + 3),
        )
        assert plan.downgrades == (f"workers_clamped:{cap + 3}->{cap}",)

    def test_submitted_job_surfaces_clamp(self, dna_scheme):
        from repro.core.planner import worker_cap

        cap = worker_cap()

        async def run():
            async with AlignmentService(
                memory_cells=50_000_000, tune="off"
            ) as svc:
                a, b = dna_pair(200, divergence=0.2, seed=3)
                job = await svc.submit(
                    a, b, dna_scheme,
                    config=AlignConfig(
                        backend="threads", max_workers=cap + 5
                    ),
                )
                return await job.future

        result = asyncio.run(run())
        assert f"workers_clamped:{cap + 5}->{cap}" in result.downgrades

    def test_unclamped_job_has_no_downgrades(self, dna_scheme):
        async def run():
            async with AlignmentService(
                memory_cells=50_000_000, tune="off"
            ) as svc:
                a, b = dna_pair(200, divergence=0.2, seed=3)
                job = await svc.submit(a, b, dna_scheme)
                return await job.future

        result = asyncio.run(run())
        assert result.downgrades == []
