"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    AlignmentError,
    AlphabetError,
    ConfigError,
    FastaError,
    PathError,
    ReproError,
    SchedulerError,
    ScoringError,
    SequenceError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            ConfigError,
            SequenceError,
            AlphabetError,
            ScoringError,
            AlignmentError,
            PathError,
            FastaError,
            SchedulerError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_value_error_compatibility(self):
        # Config/data errors double as ValueError so generic callers work.
        for exc in (ConfigError, SequenceError, ScoringError, AlignmentError, FastaError):
            assert issubclass(exc, ValueError)

    def test_scheduler_error_is_runtime(self):
        assert issubclass(SchedulerError, RuntimeError)

    def test_alphabet_is_sequence_error(self):
        assert issubclass(AlphabetError, SequenceError)

    def test_path_is_alignment_error(self):
        assert issubclass(PathError, AlignmentError)

    def test_single_except_catches_everything(self):
        from repro.scoring import dna_simple
        from repro.core import fastlsa
        from repro.scoring import ScoringScheme, linear_gap

        scheme = ScoringScheme(dna_simple(), linear_gap(-6))
        with pytest.raises(ReproError):
            fastlsa("ACGT", "ACXGT", scheme)  # alphabet error
        with pytest.raises(ReproError):
            fastlsa("ACGT", "ACGT", scheme, k=1)  # config error
