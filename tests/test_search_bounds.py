"""Soundness tests for the composition pruning bounds.

The one property everything rests on: for every pair and scheme,
``pair_bound(q, t) >= smith_waterman(q, t).score``.  A violated bound
would let the engine prune a true top-K member — the exactness tests in
``test_search_engine.py`` would fail too, but this pins the blame."""

from __future__ import annotations

import numpy as np
import pytest

from repro import smith_waterman
from repro.search import CorpusIndex
from repro.search.bounds import (
    QueryProfile,
    descending_order,
    index_bounds,
    pair_bound,
)
from tests.conftest import random_dna, random_protein

LENGTH_PAIRS = [(5, 40), (30, 30), (60, 20), (80, 80), (1, 50), (45, 3)]


class TestTopSum:
    def test_takes_largest_first(self):
        from repro.search.bounds import _top_sum

        values = np.array([5, 3, 8])
        counts = np.array([2, 10, 1])
        # best 4: one 8, two 5s, one 3
        assert _top_sum(values, counts, 4) == 8 + 5 + 5 + 3

    def test_zero_limit_and_nonpositive_values(self):
        from repro.search.bounds import _top_sum

        assert _top_sum(np.array([5]), np.array([3]), 0) == 0
        assert _top_sum(np.array([0, 0]), np.array([9, 9]), 5) == 0

    def test_counts_exhaust_before_limit(self):
        from repro.search.bounds import _top_sum

        assert _top_sum(np.array([7]), np.array([2]), 100) == 14


class TestAdmissibility:
    """bound >= true SW score, across alphabets, gap models and seeds."""

    @pytest.mark.parametrize("scheme_name", ["dna_scheme", "affine_dna_scheme"])
    @pytest.mark.parametrize("seed", [1, 9, 23])
    def test_dna_bound_dominates_score(self, request, scheme_name, seed):
        scheme = request.getfixturevalue(scheme_name)
        rng = np.random.default_rng(seed)
        for m, n in LENGTH_PAIRS:
            q, t = random_dna(rng, m), random_dna(rng, n)
            bound = pair_bound(q, t, scheme)
            score = smith_waterman(q, t, scheme).score
            assert bound >= score, f"{q!r} vs {t!r}: bound {bound} < SW {score}"

    @pytest.mark.parametrize("scheme_name", ["protein_scheme", "affine_scheme"])
    @pytest.mark.parametrize("seed", [2, 31])
    def test_protein_bound_dominates_score(self, request, scheme_name, seed):
        scheme = request.getfixturevalue(scheme_name)
        rng = np.random.default_rng(seed)
        for m, n in LENGTH_PAIRS:
            q, t = random_protein(rng, m), random_protein(rng, n)
            bound = pair_bound(q, t, scheme)
            score = smith_waterman(q, t, scheme).score
            assert bound >= score, f"{q!r} vs {t!r}: bound {bound} < SW {score}"

    def test_bound_on_related_pairs(self, rng, dna_scheme):
        """Homologous pairs (high true score) must not slip over the bound."""
        from repro.workloads import evolve

        base = random_dna(rng, 80)
        for i in range(10):
            t = evolve(base, sub_rate=0.1, indel_rate=0.05, rng=rng,
                       alphabet="ACGT").text
            assert pair_bound(base, t, dna_scheme) >= \
                smith_waterman(base, t, dna_scheme).score


class TestTightness:
    def test_self_alignment_bound_is_exact_for_dna(self, dna_scheme):
        q = "ACGTACGTAACC"
        assert pair_bound(q, q, dna_scheme) == \
            smith_waterman(q, q, dna_scheme).score == 5 * len(q)

    def test_disjoint_composition_bounds_to_zero(self, dna_scheme):
        # +5/−4 matrix: off-diagonal positive part is 0, no shared symbols
        assert pair_bound("AAAA", "TTTT", dna_scheme) == 0

    def test_empty_sides(self, dna_scheme):
        assert pair_bound("", "ACGT", dna_scheme) == 0
        assert pair_bound("ACGT", "", dna_scheme) == 0

    def test_shared_composition_caps_dna_bound(self, dna_scheme):
        # one shared A: at most one +5 pair, everything else scores <= 0
        assert pair_bound("ACCC", "AGGG", dna_scheme) == 5


class TestIndexBounds:
    def test_matches_pair_bound_per_candidate(self, rng, dna_scheme):
        records = [random_dna(rng, int(rng.integers(5, 60))) for _ in range(12)]
        index = CorpusIndex.build(records, "ACGT")
        q = random_dna(rng, 40)
        from repro.align import Sequence

        bounds = index_bounds(Sequence(q, name="q"), index, dna_scheme)
        assert bounds.tolist() == [pair_bound(q, t, dna_scheme) for t in records]

    def test_query_profile_reused_across_candidates(self, dna_scheme):
        profile = QueryProfile(dna_scheme.encode("ACGT"), dna_scheme)
        counts = np.array([1, 1, 1, 1])
        assert profile.bound(counts, 4) == 20
        assert profile.bound(np.zeros(4, dtype=int), 0) == 0


class TestDescendingOrder:
    def test_sorts_descending_stable(self):
        bounds = np.array([3, 7, 7, 1])
        order, ordered = descending_order(bounds)
        assert order.tolist() == [1, 2, 0, 3]  # ties keep corpus order
        assert ordered.tolist() == [7, 7, 3, 1]
