"""Tests for the command-line interface."""

import pytest

from repro.align import Sequence, write_fasta
from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_align_defaults(self):
        args = build_parser().parse_args(["align", "a.fa", "b.fa"])
        assert args.method == "fastlsa"
        assert args.matrix == "dna"
        assert args.gap_open == -10

    def test_version_flag(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_quiet_flag_parsed(self):
        args = build_parser().parse_args(["--quiet", "align", "a.fa", "b.fa"])
        assert args.quiet is True
        args = build_parser().parse_args(["align", "a.fa", "b.fa"])
        assert args.quiet is False

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.tcp is None
        assert args.workers == 4
        assert args.memory_cells == 4_000_000
        assert args.cache_size == 1024
        assert args.queue_depth == 256


class TestDemo:
    def test_demo_reproduces_82(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "82" in out
        assert "TLDKLLK-D" in out or "T-D-VLKAD" in out


class TestPlan:
    def test_plan_output(self, capsys):
        assert main(["plan", "10000", "10000", "500000"]) == 0
        out = capsys.readouterr().out
        assert "fastlsa" in out
        assert "ops ratio" in out

    def test_plan_full_matrix(self, capsys):
        assert main(["plan", "100", "100", "1000000"]) == 0
        assert "full-matrix" in capsys.readouterr().out

    def test_plan_infeasible_is_clean_error(self, capsys):
        assert main(["plan", "1000000", "1000000", "1000"]) == 2
        assert "error:" in capsys.readouterr().err


class TestAlign:
    @pytest.fixture
    def fasta_files(self, tmp_path):
        fa = tmp_path / "a.fasta"
        fb = tmp_path / "b.fasta"
        write_fasta(fa, [Sequence("ACGTACGTAC", name="a")])
        write_fasta(fb, [Sequence("ACGTTCGTAC", name="b")])
        return str(fa), str(fb)

    def test_align_fastlsa(self, fasta_files, capsys):
        fa, fb = fasta_files
        assert main(["align", fa, fb, "--gap-open", "-6"]) == 0
        out = capsys.readouterr().out
        assert "score=" in out

    def test_align_methods_agree(self, fasta_files, capsys):
        fa, fb = fasta_files
        scores = []
        for method in ("fastlsa", "needleman-wunsch", "hirschberg"):
            main(["align", fa, fb, "--method", method, "--gap-open", "-6"])
            out = capsys.readouterr().out
            scores.append(out.split("score=")[1].split()[0])
        assert len(set(scores)) == 1

    def test_align_stats_flag(self, fasta_files, capsys):
        fa, fb = fasta_files
        assert main(["align", fa, fb, "--stats"]) == 0
        assert "cells_computed=" in capsys.readouterr().out

    def test_align_affine(self, fasta_files, capsys):
        fa, fb = fasta_files
        assert main(["align", fa, fb, "--gap-extend", "-1", "--gap-open", "-8"]) == 0

    def test_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["align", str(tmp_path / "x.fa"), str(tmp_path / "y.fa")]) == 2
        assert "error:" in capsys.readouterr().err


class TestQuiet:
    @pytest.fixture
    def fasta_files(self, tmp_path):
        fa = tmp_path / "a.fasta"
        fb = tmp_path / "b.fasta"
        write_fasta(fa, [Sequence("ACGTACGTAC", name="a")])
        write_fasta(fb, [Sequence("ACGTTCGTAC", name="b")])
        return str(fa), str(fb)

    def test_quiet_drops_info_lines(self, fasta_files, capsys):
        fa, fb = fasta_files
        assert main(["--quiet", "align", fa, fb, "--mode", "local",
                     "--gap-open", "-6", "--stats"]) == 0
        out = capsys.readouterr().out
        assert not any(line.startswith("#") for line in out.splitlines())

    def test_default_keeps_info_lines(self, fasta_files, capsys):
        fa, fb = fasta_files
        assert main(["align", fa, fb, "--mode", "local", "--gap-open", "-6"]) == 0
        assert "# local score=" in capsys.readouterr().out

    def test_bad_serve_tcp_spec_exits_2(self, capsys):
        assert main(["serve", "--tcp", "nonsense"]) == 2
        assert "error:" in capsys.readouterr().err


class TestSpeedup:
    def test_speedup_table(self, capsys):
        assert main(["speedup", "200", "--procs", "1", "2"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out and "efficiency" in out


class TestMemorySizes:
    def test_plan_accepts_human_sizes(self, capsys):
        assert main(["plan", "10000", "10000", "64M"]) == 0
        human = capsys.readouterr().out
        # 64M bytes = 64 * 1024**2 / 8 = 8,388,608 DP cells.
        assert main(["plan", "10000", "10000", "8388608"]) == 0
        assert human == capsys.readouterr().out

    def test_plan_bare_cells_still_work(self, capsys):
        assert main(["plan", "10000", "10000", "500000"]) == 0
        assert "fastlsa" in capsys.readouterr().out

    @pytest.mark.parametrize("budget", ["0", "-5", "0M"])
    def test_plan_rejects_non_positive(self, budget, capsys):
        assert main(["plan", "100", "100", budget]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "positive" in err

    def test_plan_rejects_garbage(self, capsys):
        assert main(["plan", "100", "100", "lots"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_serve_memory_flag_parses(self):
        args = build_parser().parse_args(["serve", "--memory", "2G"])
        assert args.memory == "2G"
        from repro.core.planner import parse_memory

        assert parse_memory(args.memory) == 2 * 1024**3 // 8


class TestTrace:
    @pytest.fixture
    def fasta_files(self, tmp_path):
        fa = tmp_path / "a.fasta"
        fb = tmp_path / "b.fasta"
        write_fasta(fa, [Sequence("ACGTACGTAC" * 20, name="a")])
        write_fasta(fb, [Sequence("ACGTTCGTAC" * 20, name="b")])
        return str(fa), str(fb)

    def test_trace_writes_chrome_trace(self, fasta_files, tmp_path, capsys):
        import json

        fa, fb = fasta_files
        out = tmp_path / "trace.json"
        rows = tmp_path / "rows.json"
        assert main(["trace", fa, fb, "--gap-open", "-6", "--k", "3",
                     "--base-cells", "512", "--out", str(out),
                     "--rows", str(rows)]) == 0
        doc = json.loads(out.read_text())
        events = doc["traceEvents"]
        assert any(e["name"] == "fastlsa.align" for e in events)
        assert all(e["ph"] == "X" for e in events)
        flat = json.loads(rows.read_text())
        assert any(r["name"] == "fastlsa.fillcache" for r in flat)

        printed = capsys.readouterr().out
        assert "cells_filled=" in printed and "ops_ratio=" in printed

    def test_trace_parallel(self, fasta_files, tmp_path, capsys):
        import json

        fa, fb = fasta_files
        out = tmp_path / "ptrace.json"
        assert main(["trace", fa, fb, "--gap-open", "-6", "--k", "3",
                     "--base-cells", "512", "--parallel", "2",
                     "--out", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert any(e["name"] == "wavefront.tile" for e in doc["traceEvents"])


class TestProfile:
    @pytest.fixture
    def fasta_files(self, tmp_path):
        fa = tmp_path / "a.fasta"
        fb = tmp_path / "b.fasta"
        write_fasta(fa, [Sequence("ACGTACGTAC" * 10, name="a")])
        write_fasta(fb, [Sequence("ACGTTCGTAC" * 10, name="b")])
        return str(fa), str(fb)

    def test_profile_align_prints_phase_table(self, fasta_files, capsys):
        fa, fb = fasta_files
        assert main(["--profile", "align", fa, fb, "--gap-open", "-6"]) == 0
        captured = capsys.readouterr()
        assert "score=" in captured.out
        assert "fastlsa.align" in captured.err
        assert "total_s" in captured.err

    def test_profile_counter_matches_stats(self, fasta_files, capsys):
        fa, fb = fasta_files
        assert main(["--profile", "align", fa, fb, "--gap-open", "-6",
                     "--stats"]) == 0
        captured = capsys.readouterr()
        cells = captured.out.split("cells_computed=")[1].split()[0]
        assert f"cells_filled={cells}" in captured.err

    def test_no_profile_no_table(self, fasta_files, capsys):
        fa, fb = fasta_files
        assert main(["align", fa, fb, "--gap-open", "-6"]) == 0
        assert "fastlsa.align" not in capsys.readouterr().err


class TestIndexSearch:
    @pytest.fixture
    def corpus_files(self, tmp_path):
        corpus = tmp_path / "corpus.fasta"
        query = tmp_path / "query.fasta"
        write_fasta(corpus, [
            Sequence("ACGTACGTACGTACGTACGT", name="self"),
            Sequence("ACGTACGAACGTACGAACGA", name="near"),
            Sequence("TTTTGGGGTTTT", name="far"),
        ])
        write_fasta(query, [Sequence("ACGTACGTACGTACGTACGT", name="q")])
        return str(corpus), str(query), str(tmp_path / "corpus.flsa")

    def test_parser_defaults(self):
        args = build_parser().parse_args(["search", "c.flsa", "q.fa"])
        assert args.top_k == 5 and args.min_score == 1
        assert args.gap_open == -6 and args.backend is None
        args = build_parser().parse_args(["index", "c.fa", "-o", "c.flsa"])
        assert args.matrix == "dna" and args.alphabet is None
        args = build_parser().parse_args(["chaos"])
        assert args.scenario == "service" and args.corpus == 40

    def test_index_then_search(self, corpus_files, capsys):
        corpus, query, idx = corpus_files
        assert main(["index", corpus, "-o", idx]) == 0
        out = capsys.readouterr().out
        assert "indexed 3 sequences" in out and "fingerprint" in out

        assert main(["search", idx, query, "--top-k", "2"]) == 0
        out = capsys.readouterr().out
        assert "self" in out and "near" in out and "far" not in out
        assert "100" in out  # the exact 20-residue self-hit score

    def test_search_alignments_flag(self, corpus_files, capsys):
        corpus, query, idx = corpus_files
        main(["index", corpus, "-o", idx])
        capsys.readouterr()
        assert main(["search", idx, query, "--top-k", "1", "--alignments"]) == 0
        out = capsys.readouterr().out
        assert "ACGTACGTACGTACGTACGT" in out  # gapped rows printed

    def test_search_no_hits(self, corpus_files, capsys):
        corpus, query, idx = corpus_files
        main(["index", corpus, "-o", idx])
        capsys.readouterr()
        assert main(["search", idx, query, "--min-score", "999999"]) == 0
        assert "no hits" in capsys.readouterr().out

    def test_search_missing_index_exits_2(self, corpus_files, capsys):
        _, query, _ = corpus_files
        assert main(["search", "does-not-exist.flsa", query]) == 2
        assert "error:" in capsys.readouterr().err


class TestChaosSearchScenario:
    def test_index_rot_fails_typed(self, capsys):
        assert main(["chaos", "index-rot", "--scenario", "search",
                     "--jobs", "2", "--corpus", "10", "--length", "50"]) == 0
        out = capsys.readouterr().out
        assert "failed:CorruptIndexError" in out

    def test_flaky_search_retries_to_exact_topk(self, capsys):
        assert main(["chaos", "flaky-search", "--scenario", "search",
                     "--jobs", "2", "--corpus", "10", "--length", "50"]) == 0
        out = capsys.readouterr().out
        assert "yes" in out and "NO" not in out
