"""Calibration profile schema, cache and invalidation (PR 9 tentpole).

Covers the on-disk contract of :mod:`repro.tune.profile`: versioned JSON
roundtrip, atomic save, the strict vs forgiving load paths, and — the
part that guards correctness — cache invalidation when the host
fingerprint or schema version no longer matches, plus the warn-once
(never raise) behaviour of ``tune="auto"`` on an uncalibrated host.
"""

from __future__ import annotations

import json
import os
import warnings

import pytest

from repro.errors import ConfigError
from repro.tune import (
    SCHEMA_VERSION,
    CalibrationProfile,
    default_cache_path,
    host_fingerprint,
    host_info,
    load_cached,
    load_profile,
    synthetic_profile,
)
from repro.tune import profile as profile_mod


def _real_host_profile() -> CalibrationProfile:
    """A small profile stamped with *this* host's fingerprint."""
    info = host_info()
    return CalibrationProfile(
        host=dict(info, fingerprint=host_fingerprint(info)),
        kernels={"numpy": {"linear_cells_per_s": 80e6, "affine_cells_per_s": 30e6}},
        backends={"serial": {1: 80e6}, "threads": {2: 20e6}},
        handoff_s={"threads": 1e-4, "processes": 1e-4},
        band_fill_cells_per_s=100e6,
        base_sweep={16384: 70e6, 262144: 80e6},
        quick=True,
    )


class TestRoundtrip:
    def test_dict_roundtrip_preserves_everything(self):
        p = _real_host_profile()
        q = CalibrationProfile.from_dict(p.to_dict())
        assert q.to_dict() == p.to_dict()
        assert q.backends["threads"][2] == pytest.approx(20e6)
        assert q.base_sweep[16384] == pytest.approx(70e6)

    def test_json_keys_roundtrip_as_ints(self, tmp_path):
        # JSON stringifies int keys; load must restore worker counts and
        # base sizes as ints or every lookup goes quietly unmeasured.
        p = _real_host_profile()
        path = tmp_path / "cal.json"
        p.save(str(path))
        q = CalibrationProfile.load(str(path))
        assert q.cells_per_s("threads", 2) == pytest.approx(20e6)
        assert all(isinstance(k, int) for k in q.base_sweep)

    def test_save_is_atomic_no_tmp_left(self, tmp_path):
        p = _real_host_profile()
        path = tmp_path / "cal.json"
        p.save(str(path))
        assert path.exists()
        assert [f for f in os.listdir(tmp_path) if f.endswith(".tmp")] == []

    def test_schema_version_stamped(self, tmp_path):
        p = _real_host_profile()
        path = tmp_path / "cal.json"
        p.save(str(path))
        raw = json.loads(path.read_text())
        assert raw["schema_version"] == SCHEMA_VERSION


class TestCacheInvalidation:
    def test_load_cached_roundtrip(self, tmp_path):
        path = str(tmp_path / "cal.json")
        _real_host_profile().save(path)
        p = load_cached(path)
        assert p is not None
        assert p.serial_cells_per_s() == pytest.approx(80e6)

    def test_missing_file_is_none_not_error(self, tmp_path):
        assert load_cached(str(tmp_path / "nope.json")) is None

    def test_corrupt_json_is_none_not_error(self, tmp_path):
        path = tmp_path / "cal.json"
        path.write_text("{not json")
        assert load_cached(str(path)) is None

    def test_schema_bump_invalidates(self, tmp_path):
        path = tmp_path / "cal.json"
        raw = _real_host_profile().to_dict()
        raw["schema_version"] = SCHEMA_VERSION + 1
        path.write_text(json.dumps(raw))
        assert load_cached(str(path)) is None
        with pytest.raises(ConfigError):
            CalibrationProfile.load(str(path))  # strict path: typed error

    def test_foreign_fingerprint_invalidates(self, tmp_path):
        # A profile measured on another machine must never steer this one.
        path = tmp_path / "cal.json"
        raw = _real_host_profile().to_dict()
        raw["host"]["fingerprint"] = "feedfacefeedface"
        path.write_text(json.dumps(raw))
        assert load_cached(str(path)) is None

    def test_host_change_invalidates(self, tmp_path, monkeypatch):
        # Same file, "different" host: fingerprint is derived from host
        # facts, so a cpu_count change alone must invalidate the cache.
        path = str(tmp_path / "cal.json")
        _real_host_profile().save(path)
        real = host_info()
        fake = dict(real, cpu_count=(real["cpu_count"] or 1) + 7)
        monkeypatch.setattr(profile_mod, "host_info", lambda: fake)
        assert load_cached(path) is None

    def test_synthetic_skips_fingerprint_check(self, tmp_path):
        # Synthetic fixtures are hosts that don't exist; they load anywhere.
        path = str(tmp_path / "cal.json")
        synthetic_profile("fast-8cpu").save(path)
        p = load_cached(path)
        assert p is not None and p.cpu_count() == 8

    def test_mtime_memo_sees_replacement(self, tmp_path):
        path = str(tmp_path / "cal.json")
        _real_host_profile().save(path)
        assert load_cached(path).serial_cells_per_s() == pytest.approx(80e6)
        p2 = _real_host_profile()
        p2.backends["serial"][1] = 99e6
        p2.save(path)
        os.utime(path, (1e9, 1e9))  # force a distinct mtime
        assert load_cached(path).serial_cells_per_s() == pytest.approx(99e6)


class TestLoadProfile:
    def test_off_and_none_disable(self):
        assert load_profile(None) is None
        assert load_profile("off") is None

    def test_profile_object_passthrough(self):
        p = synthetic_profile("slow-1cpu")
        assert load_profile(p) is p

    def test_auto_without_cache_warns_once_never_raises(self):
        # Satellite: tune="auto" on a never-calibrated host degrades to
        # defaults with a single one-line warning — not an exception.
        profile_mod._WARNED_NO_PROFILE = False
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert load_profile("auto") is None
            assert load_profile("auto") is None
        notices = [w for w in caught if "calibrate" in str(w.message)]
        assert len(notices) == 1

    def test_explicit_path_is_strict(self, tmp_path):
        with pytest.raises(ConfigError):
            load_profile(str(tmp_path / "missing.json"))

    def test_explicit_path_loads_synthetic(self, tmp_path):
        path = str(tmp_path / "fixture.json")
        synthetic_profile("slow-1cpu").save(path)
        p = load_profile(path)
        assert p is not None and p.cpu_count() == 1

    def test_default_cache_path_respects_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("FASTLSA_CACHE_DIR", str(tmp_path / "alt"))
        assert default_cache_path().startswith(str(tmp_path / "alt"))


class TestCurveQueries:
    def test_best_backend_never_below_serial(self):
        p = synthetic_profile("slow-1cpu")
        # Every parallel point in the slow-1cpu fixture loses to serial.
        assert p.best_backend() == ("serial", 1)

    def test_best_backend_picks_fastest_winner(self):
        p = synthetic_profile("fast-8cpu")
        backend, workers = p.best_backend()
        assert (backend, workers) == ("processes", 8)

    def test_cells_per_s_unmeasured_is_none(self):
        p = synthetic_profile("slow-1cpu")
        assert p.cells_per_s("threads", 64) is None
        assert p.cells_per_s("gpu", 1) is None

    def test_best_base_cells_is_sweep_argmax(self):
        p = synthetic_profile("slow-1cpu")
        best = p.best_base_cells()
        assert best in p.base_sweep
        assert p.base_sweep[best] == max(p.base_sweep.values())


@pytest.mark.slow
def test_quick_calibrate_produces_consumable_profile(tmp_path):
    """The real probe (quick mode) yields a profile the decision layer
    accepts end-to-end — the CI calibrate-smoke in miniature."""
    from repro.tune import autotune_config, calibrate
    from repro.core.config import AlignConfig

    profile = calibrate(quick=True, length=96, repeats=1)
    assert profile.quick and not profile.synthetic
    assert profile.serial_cells_per_s() > 0
    path = str(tmp_path / "cal.json")
    profile.save(path)
    assert load_cached(path) is not None
    cfg, _ = autotune_config(AlignConfig(), 512, 512, profile=profile)
    assert cfg.backend in ("serial", "threads", "processes")
