"""Tests for the Smith–Waterman local-alignment baseline."""

from repro.align import check_alignment
from repro.baselines import smith_waterman
from repro.kernels.reference import ref_score_affine, ref_score_linear
from tests.conftest import random_dna

def brute_force_local(a, b, scheme):
    """Max global score over all substring pairs (floor 0)."""
    enc = scheme.encode
    table = scheme.matrix.table
    best = 0
    for i0 in range(len(a) + 1):
        for i1 in range(i0, len(a) + 1):
            for j0 in range(len(b) + 1):
                for j1 in range(j0, len(b) + 1):
                    if scheme.is_linear:
                        s = ref_score_linear(enc(a[i0:i1]), enc(b[j0:j1]), table, scheme.gap_open)
                    else:
                        s = ref_score_affine(
                            enc(a[i0:i1]), enc(b[j0:j1]), table, scheme.gap_open, scheme.gap_extend
                        )
                    best = max(best, s)
    return best


class TestCorrectness:
    def test_matches_brute_force_linear(self, rng, dna_scheme):
        for _ in range(8):
            a = random_dna(rng, int(rng.integers(1, 10)))
            b = random_dna(rng, int(rng.integers(1, 10)))
            loc = smith_waterman(a, b, dna_scheme)
            assert loc.score == brute_force_local(a, b, dna_scheme)

    def test_matches_brute_force_affine(self, rng, affine_dna_scheme):
        for _ in range(5):
            a = random_dna(rng, int(rng.integers(1, 8)))
            b = random_dna(rng, int(rng.integers(1, 8)))
            loc = smith_waterman(a, b, affine_dna_scheme)
            assert loc.score == brute_force_local(a, b, affine_dna_scheme)

    def test_subalignment_is_valid(self, rng, dna_scheme):
        a = random_dna(rng, 40)
        b = random_dna(rng, 40)
        loc = smith_waterman(a, b, dna_scheme)
        if loc.score > 0:
            ok, msg = check_alignment(loc.alignment, dna_scheme)
            assert ok, msg

    def test_ranges_match_subsequences(self, rng, dna_scheme):
        a = random_dna(rng, 30)
        b = random_dna(rng, 30)
        loc = smith_waterman(a, b, dna_scheme)
        assert loc.alignment.seq_a.text == a[loc.a_start : loc.a_end]
        assert loc.alignment.seq_b.text == b[loc.b_start : loc.b_end]


class TestKnownAnswers:
    def test_embedded_motif(self, dna_scheme):
        # The shared motif ACGTACGT should be found exactly.
        loc = smith_waterman("TTTTACGTACGTTTTT", "GGGACGTACGTGGG", dna_scheme)
        assert loc.score == 8 * 5
        assert loc.alignment.gapped_a == "ACGTACGT"

    def test_no_similarity_gives_empty(self, dna_scheme):
        loc = smith_waterman("AAAA", "TTTT", dna_scheme)
        assert loc.score == 0
        assert loc.a_start == loc.a_end == 0

    def test_local_beats_global_ends(self, dna_scheme):
        # Mismatching flanks are trimmed by local alignment.
        loc = smith_waterman("CCCCACGT", "ACGTGGGG", dna_scheme)
        assert loc.score == 20
        assert loc.alignment.gapped_a == "ACGT"

    def test_empty_input(self, dna_scheme):
        loc = smith_waterman("", "ACGT", dna_scheme)
        assert loc.score == 0

    def test_score_nonnegative(self, rng, dna_scheme):
        for _ in range(10):
            loc = smith_waterman(random_dna(rng, 12), random_dna(rng, 12), dna_scheme)
            assert loc.score >= 0

    def test_local_gap_inside_motif(self, dna_scheme):
        # Motif with one deletion still worth aligning through the gap.
        loc = smith_waterman("ACGTACGTACGT", "ACGTACGACGT"[:11], dna_scheme)
        assert loc.score >= 11 * 5 - 6
