"""Tests for the memory governor: admission, reservation, backpressure."""

import asyncio
import time

import pytest

from repro.core.planner import fastlsa_peak_cells
from repro.errors import (
    ConfigError,
    JobTimeoutError,
    MemoryBudgetError,
    QueueFullError,
)
from repro.scoring import ScoringScheme, dna_simple, linear_gap
from repro.service import AlignmentService, MemoryGovernor


@pytest.fixture
def scheme():
    return ScoringScheme(dna_simple(), linear_gap(-6))


class TestGovernorUnit:
    def test_per_job_allocation_split(self):
        gov = MemoryGovernor(total_cells=1_000_000, max_workers=4)
        assert gov.per_job_cells == 250_000

    def test_admit_plans_within_share(self):
        gov = MemoryGovernor(total_cells=400_000, max_workers=4)
        for m, n in [(50, 50), (300, 300), (900, 400)]:
            plan = gov.admit(m, n)
            assert plan.predicted_peak_cells <= gov.per_job_cells
            assert plan.config.k >= 2

    def test_admit_rejects_oversized_problem(self):
        gov = MemoryGovernor(total_cells=4_000, max_workers=4)  # 1000 cells/job
        with pytest.raises(MemoryBudgetError):
            gov.admit(5_000, 5_000)
        assert gov.rejections == 1

    def test_reserve_beyond_total_rejected(self):
        async def go():
            gov = MemoryGovernor(total_cells=100, max_workers=1)
            with pytest.raises(MemoryBudgetError):
                await gov.reserve(101)

        asyncio.run(go())

    def test_reserve_waits_for_release(self):
        async def go():
            gov = MemoryGovernor(total_cells=100, max_workers=2)
            await gov.reserve(80)

            async def releaser():
                await asyncio.sleep(0.02)
                await gov.release(80)

            rel = asyncio.ensure_future(releaser())
            await gov.reserve(50, timeout=5)  # must wait for the release
            await rel
            assert gov.waits == 1
            assert gov.cells_in_flight == 50
            assert gov.peak_cells_in_flight == 80

        asyncio.run(go())

    def test_reserve_timeout(self):
        async def go():
            gov = MemoryGovernor(total_cells=100, max_workers=2)
            await gov.reserve(80)
            with pytest.raises(JobTimeoutError):
                await gov.reserve(50, timeout=0.01)

        asyncio.run(go())

    def test_invalid_parameters(self):
        with pytest.raises(ConfigError):
            MemoryGovernor(total_cells=0, max_workers=1)
        with pytest.raises(ConfigError):
            MemoryGovernor(total_cells=10, max_workers=0)


class TestServiceAdmission:
    def test_over_budget_submission_typed_rejection(self, scheme):
        """A job that cannot fit the per-job share is rejected at submit."""

        async def go():
            async with AlignmentService(memory_cells=4_000, max_workers=4) as svc:
                with pytest.raises(MemoryBudgetError):
                    await svc.submit("A" * 4_000, "C" * 4_000, scheme)
                return svc.stats()

        stats = asyncio.run(go())
        assert stats["budget_rejections"] == 1
        assert stats["jobs_completed"] == 0

    def test_jobs_never_plan_above_per_job_share(self, scheme, rng):
        from tests.conftest import random_dna

        async def go():
            async with AlignmentService(
                memory_cells=100_000, max_workers=4, cache_size=0
            ) as svc:
                jobs = []
                for i in range(12):
                    a = random_dna(rng, 40 + 17 * i)
                    b = random_dna(rng, 30 + 23 * i)
                    jobs.append(await svc.submit(a, b, scheme))
                await asyncio.gather(*(j.future for j in jobs))
                return svc, jobs

        svc, jobs = asyncio.run(go())
        share = svc.governor.per_job_cells
        for job in jobs:
            assert job.plan.predicted_peak_cells <= share
            m, n = len(job.request.a), len(job.request.b)
            if job.plan.method == "fastlsa":
                # re-derive the model's peak from the admitted config
                assert fastlsa_peak_cells(
                    m, n, job.config.k, job.config.base_cells,
                    not scheme.is_linear,
                ) <= share
            else:  # full-matrix: the dense DPM itself fits the share
                assert (m + 1) * (n + 1) <= share
        assert svc.governor.peak_cells_in_flight <= svc.governor.total_cells

    def test_queue_depth_backpressure(self, scheme, monkeypatch):
        async def go():
            svc = AlignmentService(
                memory_cells=200_000, max_workers=1, max_batch=1,
                max_queue_depth=3, cache_size=0,
            )
            real = svc._compute_group

            def slow(group):
                time.sleep(0.15)
                return real(group)

            monkeypatch.setattr(svc, "_compute_group", slow)
            await svc.start()
            blocker = await svc.submit("ACGTACGT", "ACGTTCGT", scheme)
            await asyncio.sleep(0.02)  # dispatcher picks up the blocker
            queued = [await svc.submit("ACGT", "AC" + "GT" * i, scheme)
                      for i in range(3)]  # fills the queue to its depth limit
            with pytest.raises(QueueFullError):
                await svc.submit("ACGT", "ACGA", scheme)
            stats = svc.stats()
            await svc.close(drain=True)
            for job in [blocker] + queued:  # accepted jobs still complete
                assert job.future.result().score is not None
            return stats

        stats = asyncio.run(go())
        assert stats["jobs_rejected_queue"] == 1
        assert stats["queue_depth"] == 3

    def test_queued_job_deadline_enforced(self, scheme, monkeypatch):
        async def go():
            svc = AlignmentService(
                memory_cells=200_000, max_workers=1, max_batch=1, cache_size=0
            )
            real = svc._compute_group

            def slow(group):
                time.sleep(0.2)
                return real(group)

            monkeypatch.setattr(svc, "_compute_group", slow)
            await svc.start()
            blocker = await svc.submit("ACGTACGT", "ACGTTCGT", scheme)
            await asyncio.sleep(0.02)  # blocker is now running
            doomed = await svc.submit("ACGT", "ACGA", scheme, timeout=0.05)
            with pytest.raises(JobTimeoutError):
                await doomed.future
            await blocker.future  # the blocker itself completes fine
            stats = svc.stats()
            await svc.close()
            return stats

        stats = asyncio.run(go())
        assert stats["jobs_timed_out"] == 1
        assert stats["jobs_completed"] == 1

    def test_cells_in_flight_returns_to_zero(self, scheme):
        async def go():
            async with AlignmentService(
                memory_cells=200_000, max_workers=3, cache_size=0
            ) as svc:
                await svc.align_many(
                    [("ACGTACGT", "ACGT" * (i + 1)) for i in range(6)], scheme
                )
                return svc.governor

        gov = asyncio.run(go())
        assert gov.cells_in_flight == 0
        assert gov.reservations >= 1
