"""Tests for the sequential FastLSA algorithm."""

import pytest

from repro.align import check_alignment
from repro import AlignConfig
from repro.baselines import needleman_wunsch
from repro.core import FastLSAConfig, fastlsa
from repro.errors import ConfigError
from repro.kernels import KernelInstruments
from tests.conftest import random_dna, random_protein


class TestPaperExample:
    def test_score_82(self, table1_scheme):
        al = fastlsa("TDVLKAD", "TLDKLLKD", table1_scheme, config=AlignConfig(k=2, base_cells=16))
        assert al.score == 82

    def test_valid_alignment(self, table1_scheme):
        al = fastlsa("TDVLKAD", "TLDKLLKD", table1_scheme, config=AlignConfig(k=3, base_cells=16))
        assert check_alignment(al, table1_scheme)[0]


class TestConfig:
    def test_k_validation(self):
        with pytest.raises(ConfigError):
            FastLSAConfig(k=1)
        with pytest.raises(ConfigError):
            FastLSAConfig(k=2.5)

    def test_base_cells_validation(self):
        with pytest.raises(ConfigError):
            FastLSAConfig(base_cells=4)

    def test_base_threshold_layers(self):
        cfg = FastLSAConfig(k=4, base_cells=300)
        assert cfg.base_threshold(1) == 300
        assert cfg.base_threshold(3) == 100


class TestCorrectness:
    @pytest.mark.parametrize("k", [2, 3, 5, 8])
    @pytest.mark.parametrize("base_cells", [16, 256, 8192])
    def test_matches_nw_linear(self, rng, dna_scheme, k, base_cells):
        for _ in range(4):
            a = random_dna(rng, int(rng.integers(0, 90)))
            b = random_dna(rng, int(rng.integers(0, 90)))
            f = fastlsa(a, b, dna_scheme, config=AlignConfig(k=k, base_cells=base_cells))
            n = needleman_wunsch(a, b, dna_scheme)
            assert f.score == n.score, (a, b, k, base_cells)
            assert check_alignment(f, dna_scheme)[0]

    @pytest.mark.parametrize("k", [2, 4])
    def test_matches_nw_affine(self, rng, affine_scheme, k):
        for _ in range(6):
            a = random_protein(rng, int(rng.integers(0, 70)))
            b = random_protein(rng, int(rng.integers(0, 70)))
            f = fastlsa(a, b, affine_scheme, config=AlignConfig(k=k, base_cells=64))
            n = needleman_wunsch(a, b, affine_scheme)
            assert f.score == n.score, (a, b, k)
            assert check_alignment(f, affine_scheme)[0]

    def test_quadratic_space_degenerates_to_one_base_case(self, rng, dna_scheme):
        a, b = random_dna(rng, 30), random_dna(rng, 30)
        al = fastlsa(a, b, dna_scheme, config=AlignConfig(k=4, base_cells=10**6))
        assert al.stats.subproblems == 1
        assert al.stats.cells_computed == 900

    def test_empty_inputs(self, dna_scheme):
        assert fastlsa("", "", dna_scheme).score == 0
        assert fastlsa("ACG", "", dna_scheme).score == -18
        assert fastlsa("", "ACGT", dna_scheme).score == -24

    def test_skewed_shapes(self, rng, dna_scheme):
        for m, n in [(1, 200), (200, 1), (3, 150), (150, 3)]:
            a, b = random_dna(rng, m), random_dna(rng, n)
            f = fastlsa(a, b, dna_scheme, config=AlignConfig(k=4, base_cells=64))
            nw = needleman_wunsch(a, b, dna_scheme)
            assert f.score == nw.score, (m, n)


class TestSpaceTimeTradeoff:
    """The paper's central claims about operations vs memory."""

    def test_ops_between_1x_and_bound(self, rng, dna_scheme):
        n = 300
        a, b = random_dna(rng, n), random_dna(rng, n)
        for k in (2, 4, 8):
            al = fastlsa(a, b, dna_scheme, config=AlignConfig(k=k, base_cells=64))
            ratio = al.stats.cells_computed / (n * n)
            assert 1.0 <= ratio <= (k + 1) / (k - 1) + 0.05, (k, ratio)

    def test_linear_space_about_1_5x(self, rng, dna_scheme):
        """Paper: 'At one extreme, FastLSA uses linear space with
        approximately 1.5 times the number of operations'."""
        n = 400
        a, b = random_dna(rng, n), random_dna(rng, n)
        al = fastlsa(a, b, dna_scheme, config=AlignConfig(k=2, base_cells=64))
        ratio = al.stats.cells_computed / (n * n)
        assert 1.3 <= ratio <= 1.7, ratio

    def test_larger_k_fewer_ops_more_memory(self, rng, dna_scheme):
        n = 400
        a, b = random_dna(rng, n), random_dna(rng, n)
        prev_ops, prev_mem = None, None
        for k in (2, 4, 8):
            al = fastlsa(a, b, dna_scheme, config=AlignConfig(k=k, base_cells=64))
            if prev_ops is not None:
                assert al.stats.cells_computed <= prev_ops
                assert al.stats.peak_cells_resident >= prev_mem
            prev_ops = al.stats.cells_computed
            prev_mem = al.stats.peak_cells_resident

    def test_space_linear_in_sequence_length(self, rng, dna_scheme):
        peaks = []
        for n in (100, 200, 400):
            a, b = random_dna(rng, n), random_dna(rng, n)
            al = fastlsa(a, b, dna_scheme, config=AlignConfig(k=4, base_cells=64))
            peaks.append(al.stats.peak_cells_resident)
        # Peak grows ~linearly: doubling n should far less than 4x it.
        assert peaks[2] < 3.5 * peaks[1]
        assert peaks[1] < 3.5 * peaks[0]


class TestStats:
    def test_subproblem_and_depth_counters(self, rng, dna_scheme):
        a, b = random_dna(rng, 120), random_dna(rng, 120)
        al = fastlsa(a, b, dna_scheme, config=AlignConfig(k=3, base_cells=64))
        assert al.stats.subproblems > 1
        assert al.stats.recursion_depth >= 2

    def test_shared_instruments(self, dna_scheme):
        inst = KernelInstruments()
        fastlsa("ACGTACGTAC", "ACGTTACGTA", dna_scheme, config=AlignConfig(k=2, base_cells=16),
                instruments=inst)
        assert inst.ops.cells > 0
        assert inst.mem.current == 0  # everything freed

    def test_algorithm_name(self, dna_scheme):
        assert fastlsa("A", "C", dna_scheme).algorithm == "fastlsa"
