"""Tests for CIGAR conversion."""

import pytest

from repro.align import AlignmentPath, alignment_from_path, from_cigar, to_cigar
from repro.align.cigar import cigar_operations
from repro.baselines import needleman_wunsch
from repro.errors import AlignmentError
from tests.conftest import random_dna


def sample_alignment():
    # ACG- A
    # A-GT A
    path = AlignmentPath([(0, 0), (1, 1), (2, 1), (3, 2), (3, 3), (4, 4)])
    return alignment_from_path("ACGA", "AGTA", path, score=0)


class TestToCigar:
    def test_basic(self):
        al = sample_alignment()
        assert to_cigar(al) == "1M1I1M1D1M"

    def test_extended(self):
        al = sample_alignment()
        # columns: A/A (=), C/- (I), G/G (=), -/T (D), A/A (=)
        assert to_cigar(al, extended=True) == "1=1I1=1D1="

    def test_run_length_merging(self):
        path = AlignmentPath([(0, 0), (1, 1), (2, 2), (3, 3), (3, 4), (3, 5)])
        al = alignment_from_path("ACG", "ACGTT", path, score=0)
        assert to_cigar(al) == "3M2D"

    def test_empty(self):
        al = alignment_from_path("", "", AlignmentPath([(0, 0)]), 0)
        assert to_cigar(al) == ""

    def test_operations_counts(self):
        ops = cigar_operations(sample_alignment())
        assert sum(n for n, _ in ops) == 5


class TestFromCigar:
    def test_roundtrip(self, rng, dna_scheme):
        for _ in range(15):
            a = random_dna(rng, int(rng.integers(0, 30)))
            b = random_dna(rng, int(rng.integers(0, 30)))
            al = needleman_wunsch(a, b, dna_scheme)
            cigar = to_cigar(al)
            back = from_cigar(a, b, cigar, score=al.score)
            assert back.gapped_a == al.gapped_a
            assert back.gapped_b == al.gapped_b

    def test_extended_roundtrip(self, rng, dna_scheme):
        a, b = random_dna(rng, 20), random_dna(rng, 22)
        al = needleman_wunsch(a, b, dna_scheme)
        back = from_cigar(a, b, to_cigar(al, extended=True), score=al.score)
        assert back.gapped_a == al.gapped_a

    def test_length_mismatch_rejected(self):
        with pytest.raises(AlignmentError, match="consumes"):
            from_cigar("ACG", "ACG", "2M")

    def test_garbage_rejected(self):
        with pytest.raises(AlignmentError, match="unparsed"):
            from_cigar("A", "A", "1M banana")

    def test_bad_op_rejected(self):
        with pytest.raises(AlignmentError):
            from_cigar("A", "A", "1Z")
