"""Planner/tuner property suite (PR 9, archetype: test).

The contract under test is the one that failed in BENCH_pr5: auto
selection must be **structurally unable** to pick a backend whose
measured curve loses to serial.  Hypothesis drives randomly generated
calibration profiles through :func:`repro.tune.decision.choose`; the
frozen synthetic fixtures (``slow-1cpu``, ``fast-8cpu``) pin the exact
decisions deterministically on any CI host; and the bit-identity tests
prove an auto-picked plan changes *performance knobs only*, never the
alignment.
"""

from __future__ import annotations

import warnings

from hypothesis import given, settings, strategies as st

from repro import align
from repro.core.config import AlignConfig
from repro.core.fastlsa import fastlsa
from repro.core.planner import resolve_backend, worker_cap
from repro.kernels import registry
from repro.scoring import ScoringScheme, affine_gap, dna_simple, linear_gap
from repro.tune import (
    CalibrationProfile,
    autotune_config,
    beats_serial,
    choose,
    synthetic_profile,
    tile_uv,
)
from repro.tune.decision import predict_seconds
from repro.tune.profile import host_fingerprint
from repro.workloads import dna_pair

_M = 1_000_000.0


@st.composite
def profiles(draw):
    """A random but internally consistent calibration profile."""
    cpus = draw(st.sampled_from([1, 2, 4, 8, 16]))
    serial = draw(st.floats(min_value=1 * _M, max_value=500 * _M))
    backends = {"serial": {1: serial}}
    for backend in ("threads", "processes"):
        curve = {}
        for workers in (2, 4, 8):
            if draw(st.booleans()):
                # Anywhere from a 0.1x regression to a decent speedup.
                factor = draw(st.floats(min_value=0.1, max_value=float(workers)))
                curve[workers] = serial * factor
        if curve:
            backends[backend] = curve
    host = {"cpu_count": cpus, "platform": "Test", "machine": "syn",
            "python": "3"}
    host["fingerprint"] = host_fingerprint(host)
    return CalibrationProfile(
        host=host,
        kernels={"numpy": {"linear_cells_per_s": serial,
                           "affine_cells_per_s": serial / 3}},
        backends=backends,
        handoff_s={"threads": draw(st.floats(min_value=0, max_value=1e-3)),
                   "processes": draw(st.floats(min_value=0, max_value=1e-3))},
        band_fill_cells_per_s=draw(st.floats(min_value=0, max_value=1000 * _M)),
        base_sweep={16_384: serial * 0.9, 262_144: serial},
        synthetic=True,
    )


class TestNeverBelowSerial:
    """The BENCH_pr5 regression, made structurally impossible."""

    @settings(max_examples=120, deadline=None)
    @given(profile=profiles(),
           m=st.integers(min_value=1, max_value=2_000_000),
           n=st.integers(min_value=1, max_value=2_000_000),
           affine=st.booleans())
    def test_choice_never_picks_a_measured_loser(self, profile, m, n, affine):
        choice = choose(profile, m, n, affine=affine)
        if choice.backend != "serial":
            cps = profile.cells_per_s(choice.backend, choice.workers)
            assert cps is not None
            assert cps > profile.serial_cells_per_s()
            # ... and never more workers than the calibrated host has.
            assert choice.workers <= profile.cpu_count()

    @settings(max_examples=60, deadline=None)
    @given(profile=profiles(),
           m=st.integers(min_value=64, max_value=1_000_000),
           affine=st.booleans())
    def test_parallel_choice_predicts_no_slowdown(self, profile, m, affine):
        """The winning candidate's predicted time is never above serial's
        (serial is always in the candidate set)."""
        choice = choose(profile, m, m, affine=affine)
        serial_s = predict_seconds(
            profile, m, m, k=choice.k, backend="serial", workers=1,
            affine=affine,
        )
        assert choice.predicted_s <= serial_s + 1e-12

    @settings(max_examples=60, deadline=None)
    @given(profile=profiles(),
           m=st.integers(min_value=16, max_value=500_000),
           k=st.integers(min_value=2, max_value=16))
    def test_beats_serial_rejects_measured_losers(self, profile, m, k):
        for backend, workers, cps in profile.backend_points():
            if cps <= profile.serial_cells_per_s():
                assert not beats_serial(profile, backend, workers, m, m, k)


class TestCostModel:
    @settings(max_examples=60, deadline=None)
    @given(profile=profiles(),
           m=st.integers(min_value=64, max_value=100_000),
           doublings=st.integers(min_value=1, max_value=6),
           affine=st.booleans())
    def test_predicted_cost_monotone_in_problem_size(
        self, profile, m, doublings, affine
    ):
        """Plan cost grows with m·n (compared at >=2x size steps, where
        cell growth dominates any tile-shape discontinuity)."""
        small = choose(profile, m, m, affine=affine)
        big = choose(profile, m * 2**doublings, m * 2**doublings, affine=affine)
        assert big.predicted_s >= small.predicted_s

    @settings(max_examples=40, deadline=None)
    @given(profile=profiles(),
           workers=st.sampled_from([2, 4, 8]),
           k=st.sampled_from([2, 4, 8]),
           n=st.integers(min_value=1, max_value=5_000_000),
           affine=st.booleans())
    def test_tile_shape_respects_floor_and_cache(
        self, profile, workers, k, n, affine
    ):
        from repro.parallel.tiles import default_uv
        from repro.tune.decision import MIN_TILE_COLS

        u, v = tile_uv(profile, workers, k, n, n, affine)
        u0, v0 = default_uv(workers, k)
        assert u == u0
        assert v >= v0
        if v > v0:  # shaped narrower than default: floor must hold
            assert n // (k * v) >= MIN_TILE_COLS


class TestDeterministicDecisions:
    """The frozen fixtures pin exact decisions on any hardware."""

    def test_slow_1cpu_always_serial(self):
        profile = synthetic_profile("slow-1cpu")
        for size in (100, 1_000, 10_000, 100_000):
            choice = choose(profile, size, size)
            assert choice.backend == "serial"
            assert choice.workers == 1

    def test_fast_8cpu_scales_to_processes(self):
        profile = synthetic_profile("fast-8cpu")
        # Large problem: compute dominates handoff, the 510 Mcells/s
        # processes x8 point wins.
        choice = choose(profile, 100_000, 100_000)
        assert (choice.backend, choice.workers) == ("processes", 8)

    def test_fast_8cpu_small_problem_stays_serial(self):
        profile = synthetic_profile("fast-8cpu")
        choice = choose(profile, 96, 96)
        assert choice.backend == "serial"

    def test_band_auto_only_with_measured_headroom(self):
        slow = synthetic_profile("slow-1cpu")  # band 220M vs serial 101M
        assert choose(slow, 2_000, 2_000).band == "auto"
        assert choose(slow, 64, 64).band is None  # below min dimension
        fast = synthetic_profile("fast-8cpu")  # band 230M vs compiled 800M
        assert choose(
            fast, 2_000, 2_000, kernels=("numpy", "compiled")
        ).band is None

    def test_kernel_pick_prefers_measured_fastest(self):
        profile = synthetic_profile("fast-8cpu")
        choice = choose(profile, 1_000, 1_000, kernels=("numpy", "compiled"))
        assert choice.kernel == "compiled"
        # Restricted availability falls back to what exists.
        choice = choose(profile, 1_000, 1_000, kernels=("numpy",))
        assert choice.kernel == "numpy"


class TestAutotuneConfig:
    def test_fills_only_unset_fields(self):
        profile = synthetic_profile("fast-8cpu")
        explicit = AlignConfig(backend="threads", max_workers=2, kernel="numpy")
        tuned, notes = autotune_config(explicit, 50_000, 50_000, profile=profile)
        assert tuned.backend == "threads"  # explicit choices always win
        assert tuned.max_workers == 2
        assert tuned.kernel == "numpy"

    def test_idempotent(self):
        profile = synthetic_profile("fast-8cpu")
        once, _ = autotune_config(AlignConfig(), 50_000, 50_000, profile=profile)
        twice, notes = autotune_config(once, 50_000, 50_000, profile=profile)
        assert twice == once and notes == ()

    def test_no_profile_is_identity(self):
        cfg = AlignConfig(tune="off")
        tuned, notes = autotune_config(cfg, 10_000, 10_000)
        assert tuned is cfg and notes == ()

    def test_auto_without_cache_warns_once_and_aligns(self, dna_scheme):
        """Satellite: tune="auto" with no cached profile must degrade to
        defaults with one warning — and still produce the exact result."""
        from repro.tune import profile as profile_mod

        profile_mod._WARNED_NO_PROFILE = False
        a, b = dna_pair(200, divergence=0.25, seed=9)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            tuned = align(a, b, dna_scheme, config=AlignConfig(tune="auto"))
        reference = align(a, b, dna_scheme)
        assert tuned.score == reference.score
        assert tuned.gapped_a == reference.gapped_a
        assert tuned.gapped_b == reference.gapped_b
        assert len([w for w in caught if "calibrate" in str(w.message)]) == 1


class TestBitIdentity:
    """Auto-picked plans change performance knobs, never the answer."""

    def _reference(self, a, b, scheme):
        with registry.use("numpy"):
            return fastlsa(a, b, scheme, config=AlignConfig(k=4, base_cells=4096))

    def test_tuned_parallel_plan_matches_serial_reference(self, dna_scheme):
        # fast-8cpu steers to processes; resolve_backend clamps workers
        # to this host's cap, and the result must be bit-identical.
        profile = synthetic_profile("fast-8cpu")
        a, b = dna_pair(700, divergence=0.2, seed=31)
        cfg, _ = autotune_config(
            AlignConfig(k=4, base_cells=4096), len(a), len(b), profile=profile
        )
        assert cfg.backend in ("threads", "processes")
        ref = self._reference(a, b, dna_scheme)
        got = fastlsa(a, b, dna_scheme, config=cfg)
        assert (got.score, got.gapped_a, got.gapped_b) == (
            ref.score, ref.gapped_a, ref.gapped_b
        )

    def test_tuned_banded_plan_matches_reference(self):
        scheme = ScoringScheme(dna_simple(), affine_gap(-10, -1))
        profile = synthetic_profile("slow-1cpu")  # band=auto above 256
        a, b = dna_pair(600, divergence=0.05, seed=13)
        cfg, _ = autotune_config(
            AlignConfig(k=4, base_cells=4096), len(a), len(b),
            affine=True, profile=profile,
        )
        assert cfg.band == "auto"
        ref = self._reference(a, b, scheme)
        got = fastlsa(a, b, scheme, config=cfg)
        assert (got.score, got.gapped_a, got.gapped_b) == (
            ref.score, ref.gapped_a, ref.gapped_b
        )

    @settings(max_examples=15, deadline=None)
    @given(length=st.integers(min_value=3, max_value=160),
           divergence=st.sampled_from([0.05, 0.3]),
           kind=st.sampled_from(["slow-1cpu", "fast-8cpu"]))
    def test_property_tuned_equals_reference(self, length, divergence, kind):
        scheme = ScoringScheme(dna_simple(), linear_gap(-5))
        profile = synthetic_profile(kind)
        a, b = dna_pair(length, divergence=divergence, seed=length)
        cfg, _ = autotune_config(
            AlignConfig(k=4, base_cells=1024), len(a), len(b), profile=profile
        )
        ref = self._reference(a, b, scheme)
        got = fastlsa(a, b, scheme, config=cfg)
        assert (got.score, got.gapped_a, got.gapped_b) == (
            ref.score, ref.gapped_a, ref.gapped_b
        )


class TestWorkerClamp:
    """Satellite: resolve_backend clamps oversubscription, visibly."""

    def test_clamp_recorded_in_notes(self):
        cap = worker_cap()
        notes: list = []
        backend, workers = resolve_backend(
            AlignConfig(backend="threads", max_workers=cap + 7), notes=notes
        )
        assert workers == cap
        assert notes == [f"workers_clamped:{cap + 7}->{cap}"]

    def test_at_cap_not_clamped(self):
        cap = worker_cap()
        notes: list = []
        _, workers = resolve_backend(
            AlignConfig(backend="threads", max_workers=cap), notes=notes
        )
        assert workers == cap and notes == []

    def test_cap_floor_is_two(self):
        # Single-core hosts still allow two workers so parallel code
        # paths stay testable; the tuner is what steers them to serial.
        assert worker_cap() >= 2


class TestBatchLanes:
    """PR 10: the batch-lane pick can never select batch where its own
    measured curve loses to per-pair dispatch."""

    def _with_batch(self, curve):
        p = synthetic_profile("fast-8cpu")
        p.batch = {"numpy": {"linear": curve}}
        return p

    def test_no_profile_defaults_on(self):
        from repro.tune.decision import DEFAULT_BATCH_LANES, batch_lanes

        assert batch_lanes(None, "numpy", "linear") == DEFAULT_BATCH_LANES

    def test_missing_curve_defaults_on(self):
        from repro.tune.decision import DEFAULT_BATCH_LANES, batch_lanes

        p = self._with_batch({1: 10 * _M, 32: 40 * _M})
        assert batch_lanes(p, "compiled", "linear") == DEFAULT_BATCH_LANES
        assert batch_lanes(p, "numpy", "affine") == DEFAULT_BATCH_LANES

    def test_measured_winner_is_picked(self):
        from repro.tune.decision import batch_lanes

        p = self._with_batch({1: 10 * _M, 8: 30 * _M, 32: 45 * _M, 64: 44 * _M})
        assert batch_lanes(p, "numpy", "linear") == 32

    def test_measured_loser_disables_batching(self):
        from repro.tune.decision import batch_lanes, use_batch

        p = self._with_batch({1: 50 * _M, 8: 30 * _M, 32: 20 * _M})
        assert batch_lanes(p, "numpy", "linear") == 0
        assert not use_batch(p, "numpy", "linear")

    def test_synthetic_fixture_affine_loser(self):
        from repro.tune.decision import batch_lanes

        slow = synthetic_profile("slow-1cpu")
        assert batch_lanes(slow, "numpy", "affine") == 0
        assert batch_lanes(slow, "numpy", "linear") == 32

    def test_choice_carries_batch_lanes(self):
        choice = choose(synthetic_profile("fast-8cpu"), 400, 400,
                        kernels=("numpy", "compiled"))
        assert choice.batch_lanes == 64
        assert any(n.startswith("tuned:batch_lanes=") for n in choice.notes)

    @given(
        curve=st.dictionaries(
            st.sampled_from([1, 2, 4, 8, 16, 32, 64]),
            st.floats(min_value=1.0, max_value=1e9,
                      allow_nan=False, allow_infinity=False),
            min_size=1,
            max_size=7,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_property_never_selects_a_measured_loser(self, curve):
        from repro.tune.decision import batch_lanes

        p = self._with_batch(curve)
        picked = batch_lanes(p, "numpy", "linear")
        baseline = curve.get(1, 0.0)
        if picked > 1:
            # any selected lane count must strictly beat the per-pair
            # baseline measured by the same probe
            assert curve[picked] > baseline
            # and nothing measured strictly faster was skipped
            assert curve[picked] == max(
                v for b, v in curve.items() if b > 1 and v > baseline
            )
        elif picked == 0:
            # disabled only when every measured batch point loses
            assert all(v <= baseline for b, v in curve.items() if b > 1)
