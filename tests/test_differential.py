"""Differential correctness harness (the chaos layer's ground truth).

FastLSA is cross-checked against three independent references — the
full-matrix algorithm (Needleman–Wunsch), Hirschberg's linear-space
divide-and-conquer, and Myers–Miller's affine-gap variant — over a sweep
of ``k`` / base-case configurations, on seeded random and mutated-read
workloads.  Both the optimal **score** and the produced **path** are
verified: every alignment's gapped strings are independently re-scored
with :func:`repro.align.validate.score_alignment`, so a path that merely
claims the optimal score cannot pass.

If a fault-injection bug ever corrupted a computation, this is the suite
that defines "wrong answer".
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.align.validate import check_alignment, score_alignment, score_gapped
from repro.baselines import hirschberg, myers_miller, needleman_wunsch
from repro.core import AlignConfig, fastlsa, overlap_align, semiglobal_align
from repro.workloads import dna_pair, protein_pair
from repro.workloads.mutate import evolve

from .conftest import random_dna, random_protein

# The configuration sweep: quadratic-space extreme (huge base buffer →
# one base case, the full-matrix path inside FastLSA), a mid-size buffer,
# and tiny buffers that force deep recursion at several branching factors.
SWEEP = [
    AlignConfig(k=2, base_cells=1 << 20),
    AlignConfig(k=2, base_cells=256),
    AlignConfig(k=3, base_cells=1024),
    AlignConfig(k=8, base_cells=64),
]

#: Deep-recursion config vs the quadratic-space config, for mode tests.
DEEP = AlignConfig(k=3, base_cells=64)
WIDE = AlignConfig(k=2, base_cells=1 << 20)


def _assert_optimal(alignment, scheme, want_score):
    """Score AND path: the alignment must *earn* the optimal score."""
    assert alignment.score == want_score
    assert score_alignment(alignment, scheme) == want_score
    ok, msg = check_alignment(alignment, scheme)
    assert ok, msg


class TestLinearGapDifferential:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("config", SWEEP, ids=lambda c: f"k{c.k}b{c.base_cells}")
    def test_random_dna_vs_all_references(self, dna_scheme, seed, config):
        a, b = dna_pair(120, divergence=0.25, seed=seed)
        want = needleman_wunsch(a, b, dna_scheme).score
        assert hirschberg(a, b, dna_scheme, base_cells=128).score == want
        assert myers_miller(a, b, dna_scheme, base_cells=128).score == want
        _assert_optimal(fastlsa(a, b, dna_scheme, config=config), dna_scheme, want)

    @pytest.mark.parametrize("seed", [3, 4])
    def test_uneven_lengths(self, dna_scheme, rng, seed):
        local = np.random.default_rng(seed)
        a = random_dna(local, int(local.integers(40, 180)))
        b = random_dna(local, int(local.integers(40, 180)))
        want = needleman_wunsch(a, b, dna_scheme).score
        for config in SWEEP:
            _assert_optimal(fastlsa(a, b, dna_scheme, config=config), dna_scheme, want)

    def test_protein_blosum(self, protein_scheme, rng):
        a = random_protein(rng, 90)
        b = random_protein(rng, 110)
        want = needleman_wunsch(a, b, protein_scheme).score
        assert hirschberg(a, b, protein_scheme, base_cells=64).score == want
        for config in SWEEP:
            _assert_optimal(
                fastlsa(a, b, protein_scheme, config=config), protein_scheme, want
            )


class TestMutatedReadDifferential:
    """Workloads shaped like the service's traffic: ancestor + descendant."""

    @pytest.mark.parametrize("seed", [11, 23, 47])
    def test_evolved_dna(self, dna_scheme, seed):
        local = np.random.default_rng(seed)
        ancestor = random_dna(local, 150)
        descendant = evolve(ancestor, sub_rate=0.15, indel_rate=0.08, rng=local)
        want = needleman_wunsch(ancestor, descendant, dna_scheme).score
        assert hirschberg(ancestor, descendant, dna_scheme, base_cells=256).score == want
        for config in SWEEP:
            _assert_optimal(
                fastlsa(ancestor, descendant, dna_scheme, config=config),
                dna_scheme, want,
            )

    def test_evolved_protein_affine(self, affine_scheme):
        local = np.random.default_rng(7)
        ancestor = random_protein(local, 100)
        descendant = evolve(ancestor, sub_rate=0.2, indel_rate=0.06, rng=local)
        want = myers_miller(ancestor, descendant, affine_scheme, base_cells=128).score
        for config in SWEEP:
            _assert_optimal(
                fastlsa(ancestor, descendant, affine_scheme, config=config),
                affine_scheme, want,
            )


class TestAffineDifferential:
    @pytest.mark.parametrize("seed", [5, 6, 7])
    @pytest.mark.parametrize("config", SWEEP, ids=lambda c: f"k{c.k}b{c.base_cells}")
    def test_affine_dna_vs_myers_miller(self, affine_dna_scheme, seed, config):
        a, b = dna_pair(100, divergence=0.3, seed=seed)
        want = myers_miller(a, b, affine_dna_scheme, base_cells=128).score
        _assert_optimal(
            fastlsa(a, b, affine_dna_scheme, config=config), affine_dna_scheme, want
        )

    def test_affine_gap_runs(self, affine_dna_scheme):
        # Long indels: the workload affine gaps exist for; path join bugs
        # between recursion blocks show up here first.
        a = "ACGTACGTACGTACGTACGTACGTACGT"
        b = "ACGTACGTACGT" + "ACGTACGTACGTACGT"[:4]
        want = myers_miller(a, b, affine_dna_scheme, base_cells=64).score
        for config in SWEEP:
            _assert_optimal(
                fastlsa(a, b, affine_dna_scheme, config=config),
                affine_dna_scheme, want,
            )


class TestEndsFreeDifferential:
    """No external baseline exists for the ends-free modes, so the
    quadratic-space configuration (one base case — the full-matrix path
    inside FastLSA) serves as the reference for deep-recursion configs."""

    @pytest.mark.parametrize("seed", [8, 9])
    def test_semiglobal_config_invariance(self, dna_scheme, seed):
        local = np.random.default_rng(seed)
        read = random_dna(local, 60)
        genome = random_dna(local, 40) + read + random_dna(local, 40)
        ref = semiglobal_align(read, genome, dna_scheme, config=WIDE)
        deep = semiglobal_align(read, genome, dna_scheme, config=DEEP)
        assert deep.score == ref.score
        # Free end gaps cost zero, so the matched core must earn the score.
        assert score_gapped(
            deep.alignment.gapped_a, deep.alignment.gapped_b, dna_scheme
        ) == deep.score

    @pytest.mark.parametrize("seed", [12, 13])
    def test_overlap_config_invariance(self, dna_scheme, seed):
        local = np.random.default_rng(seed)
        left = random_dna(local, 80)
        overlap = random_dna(local, 40)
        right = random_dna(local, 80)
        a, b = left + overlap, overlap + right
        ref = overlap_align(a, b, dna_scheme, config=WIDE)
        deep = overlap_align(a, b, dna_scheme, config=DEEP)
        assert deep.score == ref.score
        assert score_gapped(
            deep.alignment.gapped_a, deep.alignment.gapped_b, dna_scheme
        ) == deep.score

    def test_semiglobal_affine_config_invariance(self, affine_dna_scheme):
        local = np.random.default_rng(99)
        read = random_dna(local, 50)
        genome = random_dna(local, 30) + read + random_dna(local, 30)
        ref = semiglobal_align(read, genome, affine_dna_scheme, config=WIDE)
        deep = semiglobal_align(read, genome, affine_dna_scheme, config=DEEP)
        assert deep.score == ref.score


@pytest.mark.slow
class TestDifferentialSweepSlow:
    """The wide sweep: more seeds x longer sequences (CI chaos job only)."""

    @pytest.mark.parametrize("seed", range(8))
    def test_long_pairs_all_configs(self, dna_scheme, seed):
        a, b = dna_pair(300, divergence=0.2, seed=100 + seed)
        want = needleman_wunsch(a, b, dna_scheme).score
        assert hirschberg(a, b, dna_scheme, base_cells=512).score == want
        assert myers_miller(a, b, dna_scheme, base_cells=512).score == want
        for config in SWEEP:
            _assert_optimal(fastlsa(a, b, dna_scheme, config=config), dna_scheme, want)

    @pytest.mark.parametrize("seed", range(4))
    def test_long_affine_pairs(self, affine_dna_scheme, seed):
        a, b = protein_pair(200, divergence=0.25, seed=seed)
        scheme = affine_dna_scheme
        # protein_pair emits protein text; use a protein affine scheme.
        from repro.scoring import ScoringScheme, affine_gap, blosum62

        scheme = ScoringScheme(blosum62(), affine_gap(-11, -2))
        want = myers_miller(a, b, scheme, base_cells=256).score
        for config in SWEEP:
            _assert_optimal(fastlsa(a, b, scheme, config=config), scheme, want)
