"""Chaos tests for the search fault sites.

Two properties, proved under injected faults:

* ``search.index.load`` — a corrupted index is a typed
  :class:`CorruptIndexError`, never a silently wrong corpus.
* ``search.candidate.score`` — transient candidate failures retry (or
  degrade, with ``allow_partial``) without ever corrupting the top-K:
  whatever hits come back are exactly the brute-force answer over the
  candidates that scored.
"""

from __future__ import annotations

import pytest

from repro import AlignConfig
from repro.align import Sequence
from repro.errors import CandidateFailedError, CorruptIndexError
from repro.faults import (
    SITE_CANDIDATE_SCORE,
    FaultPlan,
    FaultSpec,
    chaos,
    named_plan,
)
from repro.search import CorpusIndex, search
from repro.workloads import evolve

from tests.conftest import random_dna
from tests.test_search_engine import assert_hits_match, brute_force, make_corpus


@pytest.fixture
def corpus(rng):
    base = Sequence(random_dna(rng, 70), name="base")
    records = make_corpus(rng, base, n_homologs=5, n_decoys=12, n_randoms=5)
    query = evolve(base, sub_rate=0.08, indel_rate=0.02, rng=rng,
                   alphabet="ACGT", name="query")
    return records, CorpusIndex.build(records, "ACGT"), query


class TestIndexRot:
    def test_rotten_index_is_typed_error(self, corpus, tmp_path):
        _, index, _ = corpus
        path = tmp_path / "corpus.flsa"
        index.save(path)
        with chaos(named_plan("index-rot", seed=3)):
            with pytest.raises(CorruptIndexError, match="fingerprint"):
                CorpusIndex.load(path)

    def test_rot_does_not_poison_the_cache(self, corpus, tmp_path):
        """A failed load must not leave a cache entry behind."""
        from repro.search import load_index

        _, index, _ = corpus
        path = tmp_path / "corpus.flsa"
        index.save(path)
        cache = {}
        with chaos(named_plan("index-rot", seed=3)):
            with pytest.raises(CorruptIndexError):
                load_index(path, cache)
        assert cache == {}
        # and a fault-free load through the same cache succeeds
        assert load_index(path, cache).fingerprint() == index.fingerprint()


class TestFlakyScoring:
    @pytest.mark.parametrize("backend", [None, "threads"])
    def test_retries_preserve_exact_topk(self, corpus, backend):
        records, index, query = corpus
        cfg = AlignConfig(backend=backend, max_workers=2) if backend else None
        with chaos(named_plan("flaky-search", seed=7)):
            res = search(query, index, _scheme(), top_k=5,
                         config=cfg, retries=6)
        assert res.complete and not res.stats.failed
        assert res.stats.retries > 0, "the plan should actually have fired"
        assert_hits_match(res.hits, brute_force(query, records, _scheme(), 5),
                          records)

    def test_strict_mode_raises_after_exhaustion(self, corpus):
        records, index, query = corpus
        plan = FaultPlan(
            [FaultSpec(SITE_CANDIDATE_SCORE, kind="raise", p=1.0, max_fires=None)],
            seed=1, name="always-fail",
        )
        with chaos(plan):
            with pytest.raises(CandidateFailedError) as exc:
                search(query, index, _scheme(), top_k=3, retries=2)
        assert 0 <= exc.value.candidate < len(records)
        assert exc.value.name == records[exc.value.candidate].name

    def test_non_transient_errors_are_not_retried(self, corpus):
        records, index, query = corpus
        plan = FaultPlan(
            [FaultSpec(SITE_CANDIDATE_SCORE, kind="raise", error="ValueError",
                       p=1.0, max_fires=1)],
            seed=1, name="hard-fail",
        )
        with chaos(plan):
            with pytest.raises(CandidateFailedError) as exc:
                search(query, index, _scheme(), top_k=3, retries=5)
        assert isinstance(exc.value.__cause__, ValueError)

    def test_allow_partial_degrades_exactly(self, corpus):
        """Failed candidates are reported, and the hits are the exact
        brute-force answer over everything that did score."""
        records, index, query = corpus
        plan = FaultPlan(
            [FaultSpec(SITE_CANDIDATE_SCORE, kind="raise", p=1.0, max_fires=3)],
            seed=5, name="three-fail",
        )
        with chaos(plan):
            res = search(query, index, _scheme(), top_k=5, retries=0,
                         allow_partial=True)
        assert not res.complete
        failed = {idx for idx, _name in res.stats.failed}
        assert len(failed) == 3
        for idx, name in res.stats.failed:
            assert records[idx].name == name
        survivors = [r if i not in failed else Sequence("", name=r.name)
                     for i, r in enumerate(records)]
        expected = [(i, loc) for i, loc in
                    brute_force(query, survivors, _scheme(), 5)]
        assert [(h.corpus_index, h.score) for h in res.hits] == [
            (i, loc.score) for i, loc in expected
        ]


def _scheme():
    from repro import ScoringScheme, dna_simple, linear_gap

    return ScoringScheme(dna_simple(), linear_gap(-6))
