"""Tests for the kernel-provider registry (PR 8 API redesign).

The registry is the one seam between algorithm code and kernels:
``get_kernel(scheme_kind, tier)`` returns a capability-flagged provider,
``use``/``active`` carry the tier through serial call paths, and the
compiled tier only ever becomes visible after passing the import-time
parity gate.  Numpy-tier behaviour must be identical whether or not the
compiled extension is built — these tests run in both CI jobs.
"""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.kernels import registry
from repro.kernels.linear import boundary_vectors
from repro.kernels.affine import affine_boundaries
from repro.scoring import ScoringScheme, affine_gap, dna_simple, linear_gap

pytestmark = []

HAS_COMPILED = registry.compiled_available()
needs_compiled = pytest.mark.skipif(
    not HAS_COMPILED, reason="compiled kernel extension not built"
)


@pytest.fixture
def lin_scheme():
    return ScoringScheme(dna_simple(), linear_gap(-6))


@pytest.fixture
def aff_scheme():
    return ScoringScheme(dna_simple(), affine_gap(-8, -1))


class TestProviderAPI:
    def test_numpy_tier_always_available(self):
        assert "numpy" in registry.available_tiers()

    def test_get_kernel_returns_capability_flagged_provider(self):
        for kind in ("linear", "affine"):
            prov = registry.get_kernel(kind, "numpy")
            assert prov.name == "numpy"
            assert prov.scheme_kind == kind
            assert prov.compiled is False
            for method in ("sweep_last_row_col", "sweep_band", "sweep_matrix",
                           "best_cell_local", "band_fill"):
                assert callable(getattr(prov, method))

    def test_describe_shape(self):
        info = registry.describe()
        assert set(info) == {"available", "default", "compiled", "providers", "parity"}
        assert info["default"] in ("numpy", "compiled")
        names = {(p["name"], p["scheme_kind"]) for p in info["providers"]}
        assert ("numpy", "linear") in names and ("numpy", "affine") in names

    def test_unknown_scheme_kind_rejected(self):
        with pytest.raises(ConfigError, match="scheme kind"):
            registry.get_kernel("semigroup", "numpy")

    def test_unknown_tier_rejected(self):
        with pytest.raises(ConfigError, match="kernel tier"):
            registry.resolve_tier("fortran")

    def test_explicit_compiled_raises_when_absent(self):
        if HAS_COMPILED:
            assert registry.resolve_tier("compiled") == "compiled"
        else:
            with pytest.raises(ConfigError, match="compiled"):
                registry.resolve_tier("compiled")

    def test_auto_resolution(self):
        want = "compiled" if HAS_COMPILED else "numpy"
        assert registry.resolve_tier(None) == want
        assert registry.resolve_tier("auto") == want


class TestAmbientTier:
    def test_use_sets_and_restores(self):
        before = registry.current_tier()
        with registry.use("numpy"):
            assert registry.current_tier() == "numpy"
            assert registry.active("linear").name == "numpy"
        assert registry.current_tier() == before

    def test_use_resolves_eagerly(self):
        if HAS_COMPILED:
            with registry.use("compiled"):
                assert registry.active("affine").compiled
        else:
            with pytest.raises(ConfigError):
                with registry.use("compiled"):
                    pass  # pragma: no cover

    def test_nested_use(self):
        with registry.use("numpy"):
            with registry.use("auto"):
                assert registry.current_tier() in ("numpy", "compiled")
            assert registry.current_tier() == "numpy"


class TestParityReport:
    def test_report_is_json_shaped(self):
        rep = registry.parity_report()
        assert set(rep) == {"compiled_available", "parity_ok", "checks", "error"}
        assert isinstance(rep["checks"], list)

    @needs_compiled
    def test_all_checks_passed(self):
        rep = registry.parity_report()
        assert rep["parity_ok"] is True
        # 10 per-pair checks + 6 batch-kernel checks (PR 10).
        assert len(rep["checks"]) == 16
        assert all(c["ok"] for c in rep["checks"])

    @needs_compiled
    def test_compiled_only_visible_after_parity(self):
        # the invariant the gate enforces: visible => all checks passed
        assert registry.parity_report()["parity_ok"]
        assert "compiled" in registry.available_tiers()


@needs_compiled
class TestCompiledParity:
    """Randomised cross-tier bit-identity over every provider method."""

    def _random_case(self, rng, scheme):
        m = int(rng.integers(1, 48))
        n = int(rng.integers(1, 48))
        nsym = scheme.matrix.table.shape[0]
        a = rng.integers(0, min(4, nsym), size=m).astype(np.int16)
        b = rng.integers(0, min(4, nsym), size=n).astype(np.int16)
        return a, b

    def test_sweep_last_row_col_linear(self, rng, lin_scheme):
        np_prov = registry.get_kernel("linear", "numpy")
        c_prov = registry.get_kernel("linear", "compiled")
        table, gap = lin_scheme.matrix.table, lin_scheme.gap_open
        for _ in range(25):
            a, b = self._random_case(rng, lin_scheme)
            fr, fc = boundary_vectors(len(a), len(b), gap)
            ref = np_prov.sweep_last_row_col(a, b, table, gap, fr, fc, None)
            got = c_prov.sweep_last_row_col(a, b, table, gap, fr, fc, None)
            np.testing.assert_array_equal(ref[0], got[0])
            np.testing.assert_array_equal(ref[1], got[1])

    def test_sweep_matrix_affine(self, rng, aff_scheme):
        np_prov = registry.get_kernel("affine", "numpy")
        c_prov = registry.get_kernel("affine", "compiled")
        table = aff_scheme.matrix.table
        o, e = aff_scheme.gap_open, aff_scheme.gap_extend
        for _ in range(25):
            a, b = self._random_case(rng, aff_scheme)
            rh, rf, ch, ce = affine_boundaries(len(a), len(b), o, e)
            ref = np_prov.sweep_matrix(a, b, table, o, e, rh, rf, ch, ce, None)
            got = c_prov.sweep_matrix(a, b, table, o, e, rh, rf, ch, ce, None)
            for r, g in zip(ref, got):
                np.testing.assert_array_equal(r, g)

    def test_best_cell_local_both_kinds(self, rng, lin_scheme, aff_scheme):
        for kind, scheme in (("linear", lin_scheme), ("affine", aff_scheme)):
            np_prov = registry.get_kernel(kind, "numpy")
            c_prov = registry.get_kernel(kind, "compiled")
            table = scheme.matrix.table
            args = (scheme.gap_open,) if kind == "linear" else (
                scheme.gap_open, scheme.gap_extend)
            for _ in range(25):
                a, b = self._random_case(rng, scheme)
                assert np_prov.best_cell_local(a, b, table, *args, None) == \
                    c_prov.best_cell_local(a, b, table, *args, None)

    def test_band_fill_both_kinds(self, rng, lin_scheme, aff_scheme):
        np_lin = registry.get_kernel("linear", "numpy")
        c_lin = registry.get_kernel("linear", "compiled")
        np_aff = registry.get_kernel("affine", "numpy")
        c_aff = registry.get_kernel("affine", "compiled")
        for _ in range(25):
            a, b = self._random_case(rng, lin_scheme)
            width = int(rng.integers(1, max(2, min(len(a), len(b)))))
            ref = np_lin.band_fill(a, b, lin_scheme.matrix.table,
                                   lin_scheme.gap_open, width, None)
            got = c_lin.band_fill(a, b, lin_scheme.matrix.table,
                                  lin_scheme.gap_open, width, None)
            np.testing.assert_array_equal(ref, got)
            refs = np_aff.band_fill(a, b, aff_scheme.matrix.table,
                                    aff_scheme.gap_open, aff_scheme.gap_extend,
                                    width, None)
            gots = c_aff.band_fill(a, b, aff_scheme.matrix.table,
                                   aff_scheme.gap_open, aff_scheme.gap_extend,
                                   width, None)
            for r, g in zip(refs, gots):
                np.testing.assert_array_equal(r, g)


class TestEndToEndTierSelection:
    def test_fastlsa_records_kernel_in_stats(self, dna_scheme):
        from repro import AlignConfig
        from repro.core import fastlsa

        al = fastlsa("ACGTACGTACGT", "ACGTTCGTACGA", dna_scheme,
                     config=AlignConfig(kernel="numpy"))
        assert al.stats.kernel == "numpy"

    def test_fastlsa_tiers_bit_identical(self, rng, dna_scheme, affine_dna_scheme):
        if not HAS_COMPILED:
            pytest.skip("compiled kernel extension not built")
        from repro import AlignConfig
        from repro.core import fastlsa
        from tests.conftest import random_dna

        for scheme in (dna_scheme, affine_dna_scheme):
            a, b = random_dna(rng, 200), random_dna(rng, 190)
            ref = fastlsa(a, b, scheme, config=AlignConfig(k=3, base_cells=256,
                                                           kernel="numpy"))
            got = fastlsa(a, b, scheme, config=AlignConfig(k=3, base_cells=256,
                                                           kernel="compiled"))
            assert ref.score == got.score
            assert ref.gapped_a == got.gapped_a
            assert ref.gapped_b == got.gapped_b
            assert got.stats.kernel == "compiled"

    def test_bad_kernel_value_rejected_at_config(self):
        from repro import AlignConfig

        with pytest.raises(ConfigError):
            AlignConfig(kernel="cuda")


class TestPreferredTier:
    """PR 9: the calibration-installed process-wide tier override."""

    @pytest.fixture(autouse=True)
    def _restore(self):
        yield
        registry.set_preferred_tier(None)

    def test_auto_resolves_to_preference(self):
        registry.set_preferred_tier("numpy")
        assert registry.preferred_tier() == "numpy"
        assert registry.resolve_tier(None) == "numpy"
        assert registry.resolve_tier("auto") == "numpy"

    def test_explicit_tier_beats_preference(self):
        if not HAS_COMPILED:
            pytest.skip("compiled kernel extension not built")
        registry.set_preferred_tier("numpy")
        assert registry.resolve_tier("compiled") == "compiled"

    def test_none_restores_static_default(self):
        registry.set_preferred_tier("numpy")
        registry.set_preferred_tier(None)
        assert registry.preferred_tier() is None
        expected = "compiled" if HAS_COMPILED else "numpy"
        assert registry.resolve_tier("auto") == expected

    def test_rejects_bogus_and_unavailable_tiers(self, monkeypatch):
        with pytest.raises(ConfigError):
            registry.set_preferred_tier("cuda")
        monkeypatch.setattr(registry, "compiled_available", lambda: False)
        with pytest.raises(ConfigError):
            registry.set_preferred_tier("compiled")
        assert registry.preferred_tier() is None
