"""Tests for the two-level cache hierarchy simulator."""

import pytest

from repro.errors import ConfigError
from repro.memsim import (
    CacheConfig,
    CacheHierarchy,
    HierarchyConfig,
    trace_fastlsa,
    trace_full_matrix,
)


def small_hierarchy(l1_cells=64, l2_cells=1024):
    return HierarchyConfig(
        l1=CacheConfig(l1_cells, line_cells=8, assoc=8),
        l2=CacheConfig(l2_cells, line_cells=8, assoc=8),
    )


class TestConfig:
    def test_l2_smaller_rejected(self):
        with pytest.raises(ConfigError):
            HierarchyConfig(
                l1=CacheConfig(1024, line_cells=8, assoc=8),
                l2=CacheConfig(64, line_cells=8, assoc=8),
            )

    def test_line_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            HierarchyConfig(
                l1=CacheConfig(64, line_cells=8, assoc=8),
                l2=CacheConfig(1024, line_cells=16, assoc=8),
            )

    def test_latency_order_enforced(self):
        with pytest.raises(ConfigError):
            HierarchyConfig(
                l1=CacheConfig(64, line_cells=8, assoc=8),
                l2=CacheConfig(1024, line_cells=8, assoc=8),
                t_l1=5.0, t_l2=1.0,
            )


class TestBehaviour:
    def test_first_touch_goes_to_memory(self):
        h = CacheHierarchy(small_hierarchy())
        assert h.access_cell(0) == "mem"
        assert h.access_cell(0) == "l1"

    def test_l2_serves_l1_evictions(self):
        # L1 = 8 lines; touch 9 distinct lines, then re-touch the first:
        # it was evicted from L1 but still lives in L2.
        h = CacheHierarchy(small_hierarchy())
        for line in range(9):
            h.access_line(line)
        assert h.access_line(0) == "l2"

    def test_counters_sum(self):
        h = CacheHierarchy(small_hierarchy())
        h.run(range(20))
        h.run(range(20))
        assert h.stats.accesses == 40

    def test_time_estimate_orders_levels(self):
        cfg = small_hierarchy()
        h = CacheHierarchy(cfg)
        h.access_line(0)          # mem
        t_mem_only = h.time_estimate()
        h.access_line(0)          # l1
        assert h.time_estimate() == t_mem_only + cfg.t_l1

    def test_reset(self):
        h = CacheHierarchy(small_hierarchy())
        h.access_line(0)
        h.reset()
        assert h.stats.accesses == 0
        assert h.access_line(0) == "mem"

    def test_access_range(self):
        h = CacheHierarchy(small_hierarchy())
        h.access_range(0, 64)
        assert h.stats.accesses == 8


class TestAlgorithmTraces:
    def test_fastlsa_l1_rate_beats_fm(self):
        """Rolling rows keep FastLSA's working set in L1; FM streams."""
        cfg = small_hierarchy(l1_cells=256, l2_cells=4096)
        n = 128
        h_fm = CacheHierarchy(cfg)
        trace_full_matrix(h_fm, n, n)
        h_fl = CacheHierarchy(cfg)
        trace_fastlsa(h_fl, n, n, k=4, base_cells=1024)
        assert h_fl.stats.l2_miss_rate < h_fm.stats.l2_miss_rate

    def test_two_crossovers(self):
        """L2 misses stay ~flat for FastLSA as the problem grows, but rise
        for the FM algorithm."""
        cfg = small_hierarchy(l1_cells=256, l2_cells=2048)
        fm_rates, fl_rates = [], []
        for n in (48, 96, 192):
            h1 = CacheHierarchy(cfg)
            trace_full_matrix(h1, n, n)
            fm_rates.append(h1.stats.l2_miss_rate)
            h2 = CacheHierarchy(cfg)
            trace_fastlsa(h2, n, n, k=4, base_cells=1024)
            fl_rates.append(h2.stats.l2_miss_rate)
        assert fm_rates[-1] > fm_rates[0]
        assert fl_rates[-1] < fm_rates[-1]
