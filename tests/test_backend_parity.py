"""Backend parity: serial vs threads vs processes, bit-for-bit.

The wavefront backends are pure execution strategies — every one must
produce the *identical* optimal score AND the identical traceback path
for the same inputs and FastLSA parameters.  This suite sweeps the
differential harness's ``k`` / base-case configurations across all three
backends (linear and affine schemes, plus the ends-free modes), and
exercises the process backend's failure surface: a killed worker must
come back as a typed, transient :class:`~repro.errors.WorkerCrashError`
(never a hang), injected faults must propagate with their site, and
worker trace spans must merge into the parent's instrumentation.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro import WorkerCrashError, fastlsa, faults, obs
from repro.core import AlignConfig, overlap_align, semiglobal_align
from repro.errors import InjectedFaultError, MemoryBudgetError
from repro.faults.plan import SITE_TILE_START, FaultPlan, FaultSpec
from repro.parallel import active_shm_names, get_process_pool, parallel_fastlsa
from repro.service.governor import MemoryGovernor
from repro.service.resilience import is_transient
from repro.workloads import dna_pair, protein_pair

from .test_differential import SWEEP, _assert_optimal

BACKENDS = ["threads", "processes"]


def _with_backend(config: AlignConfig, backend: str, workers: int = 2) -> AlignConfig:
    return AlignConfig(
        config.k, config.base_cells, max_workers=workers, backend=backend
    )


class TestScoreAndPathParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("config", SWEEP, ids=lambda c: f"k{c.k}b{c.base_cells}")
    def test_linear_dna(self, dna_scheme, config, backend):
        a, b = dna_pair(120, divergence=0.25, seed=1)
        ref = fastlsa(a, b, dna_scheme, config=config)
        got = fastlsa(a, b, dna_scheme, config=_with_backend(config, backend))
        assert got.score == ref.score
        assert got.path.points == ref.path.points
        _assert_optimal(got, dna_scheme, ref.score)

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("config", SWEEP, ids=lambda c: f"k{c.k}b{c.base_cells}")
    def test_affine_protein(self, affine_scheme, config, backend):
        a, b = protein_pair(90, divergence=0.3, seed=2)
        ref = fastlsa(a, b, affine_scheme, config=config)
        got = fastlsa(a, b, affine_scheme, config=_with_backend(config, backend))
        assert got.score == ref.score
        assert got.path.points == ref.path.points
        _assert_optimal(got, affine_scheme, ref.score)

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("seed", [0, 3])
    def test_linear_seeds_deep_recursion(self, dna_scheme, backend, seed):
        a, b = dna_pair(150, divergence=0.2, seed=seed)
        config = AlignConfig(k=3, base_cells=64)
        ref = fastlsa(a, b, dna_scheme, config=config)
        got = fastlsa(a, b, dna_scheme, config=_with_backend(config, backend, 3))
        assert got.score == ref.score
        assert got.path.points == ref.path.points

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_ends_free_modes(self, dna_scheme, backend):
        # config= routes through the same backend resolution, so the
        # ends-free drivers get wavefront FillCache for free.
        a, b = dna_pair(130, divergence=0.25, seed=5)
        config = AlignConfig(k=4, base_cells=256)
        bcfg = _with_backend(config, backend)
        for fn in (semiglobal_align, overlap_align):
            ref = fn(a, b, dna_scheme, config=config)
            got = fn(a, b, dna_scheme, config=bcfg)
            assert got.score == ref.score
            assert got.alignment.path.points == ref.alignment.path.points

    def test_parallel_fastlsa_backend_param(self, dna_scheme):
        a, b = dna_pair(140, divergence=0.25, seed=7)
        ref = fastlsa(a, b, dna_scheme, config=AlignConfig(k=4, base_cells=256))
        got = parallel_fastlsa(
            a, b, dna_scheme, P=2,
            config=AlignConfig(k=4, base_cells=256), backend="processes",
        )
        assert got.score == ref.score
        assert got.path.points == ref.path.points
        assert "processes" in got.algorithm


class TestProcessFailureSurface:
    CFG = AlignConfig(k=4, base_cells=64, max_workers=2, backend="processes")

    def test_killed_worker_raises_typed_error_not_hang(self, dna_scheme):
        a, b = dna_pair(150, divergence=0.25, seed=9)
        want = fastlsa(a, b, dna_scheme, config=AlignConfig(k=4, base_cells=64)).score
        pool = get_process_pool(2)
        os.kill(pool._procs[0].pid, signal.SIGKILL)
        t0 = time.monotonic()
        with pytest.raises(WorkerCrashError) as info:
            fastlsa(a, b, dna_scheme, config=self.CFG)
        assert time.monotonic() - t0 < 30.0  # liveness polling, not a hang
        assert is_transient(info.value)  # the service retry policy applies
        # lifecycle replaces the broken pool: a plain retry succeeds.
        assert fastlsa(a, b, dna_scheme, config=self.CFG).score == want
        assert active_shm_names() == set()

    def test_injected_fault_propagates_from_worker(self, dna_scheme):
        a, b = dna_pair(150, divergence=0.25, seed=9)
        plan = FaultPlan(
            [FaultSpec(SITE_TILE_START, kind="raise", p=1.0, max_fires=1)], seed=1
        )
        with faults.chaos(plan):
            with pytest.raises(InjectedFaultError) as info:
                fastlsa(a, b, dna_scheme, config=self.CFG)
        assert info.value.site == SITE_TILE_START
        assert info.value.transient
        assert active_shm_names() == set()
        # The pool survives an injected fault (no worker died).
        ok = fastlsa(a, b, dna_scheme, config=self.CFG)
        ref = fastlsa(a, b, dna_scheme, config=AlignConfig(k=4, base_cells=64))
        assert ok.score == ref.score


class TestObservabilityAcrossProcesses:
    def test_worker_spans_and_metrics_merge(self, dna_scheme):
        a, b = dna_pair(150, divergence=0.25, seed=4)
        cfg = AlignConfig(k=4, base_cells=64, max_workers=2, backend="processes")
        with obs.instrumented() as inst:
            fastlsa(a, b, dna_scheme, config=cfg)
        tiles = inst.tracer.find("wavefront.tile")
        assert tiles, "no wavefront.tile spans recorded"
        assert all(s.attrs.get("adopted") for s in tiles)
        assert all(s.attrs.get("backend") == "processes" for s in tiles)
        runs = inst.tracer.find("wavefront.run")
        assert runs and not any(s.attrs.get("adopted") for s in runs)


class TestGovernorArenaAccounting:
    def test_processes_config_billed_for_arena(self):
        async def go():
            gov = MemoryGovernor(total_cells=200_000, max_workers=1)
            serial_cfg = AlignConfig(k=2, base_cells=1024)
            plan = gov.admit(5000, 5000, config=serial_cfg)
            proc_cfg = AlignConfig(
                k=2, base_cells=1024, max_workers=4, backend="processes"
            )
            with pytest.raises(MemoryBudgetError):
                gov.admit(5000, 5000, config=proc_cfg)
            return plan

        plan = asyncio.run(go())
        assert plan.predicted_peak_cells <= 200_000


@pytest.mark.slow
def test_bench_harness_full_path(tmp_path):
    """The non-smoke benchmark path: parity + the 1.3x kernel bar enforced."""
    repo_root = Path(__file__).resolve().parents[1]
    out = tmp_path / "bench.json"
    proc = subprocess.run(
        [
            sys.executable,
            str(repo_root / "benchmarks" / "bench_pr5_backends.py"),
            "--lengths", "1000", "--workers", "2", "--repeats", "3",
            "--out", str(out),
        ],
        cwd=repo_root,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    data = json.loads(out.read_text())
    assert data["kernel_fastpath"]["parity"]
    assert data["kernel_fastpath"]["speedup"] >= 1.3
    assert all(row["parity"] for row in data["sweep"])
    assert data["meta"]["cpu_count"] == os.cpu_count()


class TestServiceBackend:
    def test_default_backend_jobs_match_serial(self, dna_scheme):
        pairs = [dna_pair(100, divergence=0.3, seed=s) for s in range(3)]
        cfg = AlignConfig(k=4, base_cells=256)

        async def go():
            from repro.service import AlignmentService

            async with AlignmentService(
                memory_cells=4_000_000,
                default_backend="processes",
                backend_workers=2,
            ) as svc:
                results = [
                    await svc.align(a, b, dna_scheme, config=cfg) for a, b in pairs
                ]
                stats = svc.stats()
            return results, stats

        results, stats = asyncio.run(go())
        assert stats["default_backend"] == "processes"
        for (a, b), res in zip(pairs, results):
            assert res.score == fastlsa(a, b, dna_scheme, config=cfg).score
        assert active_shm_names() == set()
