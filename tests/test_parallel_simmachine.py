"""Tests for the simulated parallel machine."""

import pytest

from repro.errors import SchedulerError
from repro.parallel import TileGrid, list_schedule, simulate_schedule


def uniform_grid(R, C, skip=None):
    return TileGrid(list(range(0, 10 * (R + 1), 10)), list(range(0, 10 * (C + 1), 10)), skip=skip)


class TestListSchedule:
    def test_single_worker_serialises(self):
        tg = uniform_grid(2, 2)
        makespan, spans = list_schedule(tg, 1, lambda tid: 1.0)
        assert makespan == 4.0
        assert len(spans) == 4

    def test_infinite_workers_hit_critical_path(self):
        tg = uniform_grid(3, 3)
        makespan, _ = list_schedule(tg, 100, lambda tid: 1.0)
        assert makespan == 5.0  # 3 + 3 - 1 wavefront lines

    def test_dependencies_respected(self):
        tg = uniform_grid(2, 2)
        _, spans = list_schedule(tg, 4, lambda tid: 1.0)
        for tid, (start, _) in spans.items():
            for dep in tg.dependencies(tid):
                assert spans[dep][1] <= start, (tid, dep)

    def test_invalid_p(self):
        with pytest.raises(SchedulerError):
            list_schedule(uniform_grid(1, 1), 0, lambda t: 1.0)

    def test_nonuniform_costs(self):
        tg = uniform_grid(1, 3)  # a chain of 3 tiles
        makespan, _ = list_schedule(tg, 4, lambda tid: float(tid[1] + 1))
        assert makespan == 1 + 2 + 3


class TestSimulateSchedule:
    def test_report_consistency(self):
        tg = uniform_grid(4, 4)
        rep = simulate_schedule(tg, 4)
        assert rep.total_cost == tg.total_cells()
        assert rep.makespan <= rep.total_cost
        assert rep.makespan >= rep.total_cost / 4
        assert rep.makespan >= rep.critical_path
        assert 0 < rep.efficiency <= 1.0

    def test_speedup_bounded_by_p(self):
        for P in (1, 2, 4, 8):
            rep = simulate_schedule(uniform_grid(8, 8), P)
            assert rep.speedup <= P + 1e-9

    def test_p1_has_speedup_one(self):
        rep = simulate_schedule(uniform_grid(5, 5), 1)
        assert rep.speedup == pytest.approx(1.0)

    def test_more_workers_never_slower(self):
        prev = None
        for P in (1, 2, 4, 8, 16):
            rep = simulate_schedule(uniform_grid(10, 10), P)
            if prev is not None:
                assert rep.makespan <= prev + 1e-9
            prev = rep.makespan

    def test_overhead_increases_cost(self):
        tg = uniform_grid(4, 4)
        r0 = simulate_schedule(tg, 2, overhead=0)
        r1 = simulate_schedule(tg, 2, overhead=50)
        assert r1.total_cost == r0.total_cost + 50 * len(tg)
        assert r1.makespan > r0.makespan

    def test_deterministic(self):
        tg = uniform_grid(6, 6)
        r1 = simulate_schedule(tg, 3)
        r2 = simulate_schedule(tg, 3)
        assert r1.makespan == r2.makespan

    def test_skipped_tiles_not_executed(self):
        tg = uniform_grid(2, 2, skip={(1, 1)})
        rep = simulate_schedule(tg, 2)
        assert rep.n_tasks == 3
