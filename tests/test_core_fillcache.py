"""Tests for repro.core.fillcache: grid lines must equal dense-DPM rows."""

import numpy as np
import pytest

from repro.core import Grid, fill_grid
from repro.core.fastlsa import initial_problem
from repro.kernels import OpCounter, affine_boundaries, boundary_vectors, sweep_matrix, sweep_matrix_affine
from tests.conftest import random_dna


def dense_linear(scheme, a, b):
    ac, bc = scheme.encode(a), scheme.encode(b)
    fr, fc = boundary_vectors(len(a), len(b), scheme.gap_open)
    return sweep_matrix(ac, bc, scheme.matrix.table, scheme.gap_open, fr, fc)


class TestFillGridLinear:
    @pytest.mark.parametrize("k", [2, 3, 4, 7])
    def test_grid_lines_match_dense(self, rng, dna_scheme, k):
        m = n = 37
        a, b = random_dna(rng, m), random_dna(rng, n)
        H = dense_linear(dna_scheme, a, b)
        grid = Grid(initial_problem(m, n, dna_scheme), k, affine=False)
        fill_grid(grid, dna_scheme.encode(a), dna_scheme.encode(b), dna_scheme)
        for p in range(1, len(grid.row_bounds) - 1):
            r = grid.row_bounds[p]
            line = grid.row_line(p, 0, n)
            assert np.array_equal(line.h, H[r, :]), f"grid row {p}"
        for q in range(1, len(grid.col_bounds) - 1):
            c = grid.col_bounds[q]
            line = grid.col_line(q, 0, m)
            assert np.array_equal(line.h, H[:, c]), f"grid col {q}"

    def test_rectangular_problem(self, rng, dna_scheme):
        m, n = 23, 51
        a, b = random_dna(rng, m), random_dna(rng, n)
        H = dense_linear(dna_scheme, a, b)
        grid = Grid(initial_problem(m, n, dna_scheme), 3, affine=False)
        fill_grid(grid, dna_scheme.encode(a), dna_scheme.encode(b), dna_scheme)
        r = grid.row_bounds[1]
        assert np.array_equal(grid.row_line(1, 0, n).h, H[r, :])

    def test_skip_bottom_right_ops(self, rng, dna_scheme):
        m = n = 40
        a, b = random_dna(rng, m), random_dna(rng, n)
        c_skip, c_full = OpCounter(), OpCounter()
        for skip, counter in ((True, c_skip), (False, c_full)):
            grid = Grid(initial_problem(m, n, dna_scheme), 4, affine=False)
            fill_grid(grid, dna_scheme.encode(a), dna_scheme.encode(b), dna_scheme,
                      counter=counter, skip_bottom_right=skip)
        assert c_full.cells == m * n
        assert c_skip.cells == m * n - 10 * 10  # minus the last block


class TestFillGridAffine:
    def test_grid_lines_match_dense(self, rng, affine_dna_scheme):
        m = n = 31
        scheme = affine_dna_scheme
        a, b = random_dna(rng, m), random_dna(rng, n)
        ac, bc = scheme.encode(a), scheme.encode(b)
        rh, rf, ch, ce = affine_boundaries(m, n, scheme.gap_open, scheme.gap_extend)
        H, E, F = sweep_matrix_affine(
            ac, bc, scheme.matrix.table, scheme.gap_open, scheme.gap_extend, rh, rf, ch, ce
        )
        grid = Grid(initial_problem(m, n, scheme), 3, affine=True)
        fill_grid(grid, ac, bc, scheme)
        for p in range(1, len(grid.row_bounds) - 1):
            r = grid.row_bounds[p]
            line = grid.row_line(p, 0, n)
            assert np.array_equal(line.h, H[r, :])
            assert np.array_equal(line.f[1:], F[r, 1:])  # corner is sentinel
        for q in range(1, len(grid.col_bounds) - 1):
            c = grid.col_bounds[q]
            line = grid.col_line(q, 0, m)
            assert np.array_equal(line.h, H[:, c])
            assert np.array_equal(line.e[1:], E[1:, c])
