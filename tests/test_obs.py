"""Tests for the observability layer (repro.obs).

Covers the metrics primitives, the tracer, the context-propagated
runtime hook — including the two contract tests the instrumentation
must satisfy: *disabled is a no-op* (byte-identical results, tracer
never invoked) and *enabled reflects the recursion shape* (span tree
and cell attribution agree with the algorithm's own accounting).
"""

import json
import threading

import pytest

from repro import obs
from repro.core import AlignConfig, fastlsa
from repro.errors import ConfigError
from repro.kernels.ops import KernelInstruments
from repro.obs import Instrumentation, MetricsRegistry, Tracer
from repro.obs import runtime as obs_runtime
from repro.parallel import parallel_fastlsa
from repro.parallel.wavefront import PHASE_NAMES

from tests.conftest import random_dna


# ----------------------------------------------------------------------
# metrics primitives
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter(self):
        reg = MetricsRegistry()
        c = reg.counter("x")
        c.inc()
        c.inc(4)
        assert c.value == 5
        assert reg.counter("x") is c  # get-or-create

    def test_counter_cannot_decrease(self):
        with pytest.raises(ConfigError):
            MetricsRegistry().counter("x").inc(-1)

    def test_gauge_tracks_high_water(self):
        g = MetricsRegistry().gauge("depth")
        g.set(3)
        g.add(2)
        g.set(1)
        assert g.value == 1
        assert g.max == 5

    def test_histogram_summary(self):
        h = MetricsRegistry().histogram("wait")
        for v in (1.0, 3.0, 2.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 3
        assert snap["min"] == 1.0
        assert snap["max"] == 3.0
        assert snap["mean"] == 2.0

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ConfigError):
            reg.gauge("x")

    def test_snapshot_is_flat_and_jsonable(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(7)
        reg.histogram("h").observe(0.5)
        snap = reg.snapshot()
        assert snap["c"] == 2
        assert snap["g"]["max"] == 7
        assert snap["h"]["count"] == 1
        json.dumps(snap)  # must not raise

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.reset()
        assert reg.names() == []


# ----------------------------------------------------------------------
# tracer
# ----------------------------------------------------------------------
class TestTracer:
    def test_nesting_within_a_thread(self):
        t = Tracer()
        with t.span("outer"):
            with t.span("inner"):
                pass
        (root,) = t.roots
        assert root.name == "outer"
        assert [c.name for c in root.children] == ["inner"]
        assert root.end is not None and root.duration >= root.children[0].duration

    def test_explicit_cross_thread_parent(self):
        t = Tracer()
        parent = t.start_span("parent")

        def work():
            with t.span("child", parent=parent):
                pass

        th = threading.Thread(target=work)
        th.start()
        th.join()
        t.end_span(parent)
        assert [c.name for c in parent.children] == ["child"]
        assert parent.children[0].thread != parent.thread

    def test_error_attr_on_exception(self):
        t = Tracer()
        with pytest.raises(ValueError):
            with t.span("bad"):
                raise ValueError("boom")
        assert t.roots[0].attrs["error"] == "ValueError"
        assert t.roots[0].end is not None

    def test_to_rows_and_find(self):
        t = Tracer()
        with t.span("a", cells=10):
            with t.span("b"):
                pass
        rows = t.to_rows()
        assert [r["name"] for r in rows] == ["a", "b"]
        assert rows[0]["cells"] == 10
        assert rows[1]["depth"] == 1
        assert len(t.find("b")) == 1

    def test_chrome_trace_shape(self):
        t = Tracer()
        with t.span("region", category="fill", cells=4):
            pass
        doc = t.chrome_trace()
        (event,) = doc["traceEvents"]
        assert event["ph"] == "X"
        assert event["cat"] == "fill"
        assert event["dur"] >= 0
        assert event["args"]["cells"] == 4
        json.dumps(doc)  # chrome://tracing needs plain JSON

    def test_reset(self):
        t = Tracer()
        with t.span("x"):
            pass
        t.reset()
        assert len(t) == 0


# ----------------------------------------------------------------------
# runtime hook
# ----------------------------------------------------------------------
class TestRuntime:
    def test_off_by_default(self):
        assert obs_runtime.current() is None
        with obs_runtime.span("anything") as sp:
            assert sp is None  # the shared null span yields None

    def test_helpers_are_noops_when_off(self):
        # Must not raise and must not create any state anywhere.
        obs_runtime.counter_add("x", 3)
        obs_runtime.gauge_set("y", 1.0)
        obs_runtime.observe("z", 0.5)

    def test_instrumented_scopes_and_restores(self):
        with obs.instrumented() as inst:
            assert obs_runtime.current() is inst
            with obs_runtime.span("s") as sp:
                assert sp is not None
        assert obs_runtime.current() is None

    def test_enable_disable_global(self):
        inst = obs.enable()
        try:
            assert obs_runtime.current() is inst
        finally:
            obs.disable()
        assert obs_runtime.current() is None

    def test_worker_threads_see_scoped_instrumentation(self):
        seen = []
        with obs.instrumented() as inst:
            th = threading.Thread(target=lambda: seen.append(obs_runtime.current()))
            th.start()
            th.join()
        assert seen == [inst]


# ----------------------------------------------------------------------
# contract: disabled instrumentation is a strict no-op
# ----------------------------------------------------------------------
class TestDisabledIsNoop:
    def test_results_byte_identical_and_tracer_untouched(
        self, rng, dna_scheme, monkeypatch
    ):
        a = random_dna(rng, 300)
        b = random_dna(rng, 320)
        config = AlignConfig(k=4, base_cells=2048)

        with obs.instrumented():
            enabled = fastlsa(a, b, dna_scheme, config=config)

        calls = []
        monkeypatch.setattr(
            Tracer,
            "start_span",
            lambda self, *args, **kw: calls.append(args) or (_ for _ in ()).throw(
                AssertionError("tracer invoked while disabled")
            ),
        )
        disabled = fastlsa(a, b, dna_scheme, config=config)

        assert calls == []  # the hook never reached any tracer
        assert disabled.score == enabled.score
        assert disabled.gapped_a == enabled.gapped_a
        assert disabled.gapped_b == enabled.gapped_b
        assert disabled.stats.cells_computed == enabled.stats.cells_computed


# ----------------------------------------------------------------------
# contract: enabled spans mirror the recursion
# ----------------------------------------------------------------------
class TestEnabledShape:
    def test_span_tree_matches_recursion(self, rng, dna_scheme):
        a = random_dna(rng, 300)
        b = random_dna(rng, 320)
        inst_k = KernelInstruments()
        with obs.instrumented() as inst:
            result = fastlsa(
                a, b, dna_scheme, config=AlignConfig(k=4, base_cells=2048),
                instruments=inst_k,
            )

        align_spans = inst.tracer.find("fastlsa.align")
        assert len(align_spans) == 1
        assert align_spans[0].attrs["score"] == result.score
        assert align_spans[0].parent_id is None

        recurse = inst.tracer.find("fastlsa.recurse")
        base = inst.tracer.find("fastlsa.base_case")
        # Every sub-problem the algorithm counts is either a general-case
        # recursion span or a base-case solve span.
        assert len(recurse) + len(base) == result.stats.subproblems
        assert len(base) >= 1 and len(recurse) >= 1

        # Cell attribution partitions exactly: FillCache + Base Case
        # leaves account for every DP cell the kernels counted.
        fill = inst.tracer.find("fastlsa.fillcache")
        cells = sum(s.attrs["cells"] for s in fill) + sum(
            s.attrs["cells"] for s in base
        )
        assert cells == result.stats.cells_computed == inst_k.ops.cells
        assert (
            inst.metrics.counter("fastlsa.cells_filled").value
            == result.stats.cells_computed
        )

        # fill bands nest under fillcache spans; recursion nests properly.
        for band in inst.tracer.find("fastlsa.fill_band"):
            assert band.parent_id in {s.span_id for s in fill}
        for span in recurse:
            assert span.attrs["depth"] <= result.stats.recursion_depth

    def test_wall_time_histogram_and_alignment_counter(self, rng, dna_scheme):
        a = random_dna(rng, 120)
        b = random_dna(rng, 120)
        with obs.instrumented() as inst:
            fastlsa(a, b, dna_scheme, config=AlignConfig(k=3, base_cells=1024))
            fastlsa(a, b, dna_scheme, config=AlignConfig(k=3, base_cells=1024))
        assert inst.metrics.counter("fastlsa.alignments").value == 2
        assert inst.metrics.histogram("fastlsa.wall_time").count == 2


# ----------------------------------------------------------------------
# parallel: tile spans carry Figure-13 phases
# ----------------------------------------------------------------------
class TestWavefrontSpans:
    def test_tile_spans_tagged_with_phases(self, rng, dna_scheme):
        a = random_dna(rng, 220)
        b = random_dna(rng, 240)
        config = AlignConfig(k=3, base_cells=900)
        seq = fastlsa(a, b, dna_scheme, config=config)
        with obs.instrumented() as inst:
            par = parallel_fastlsa(a, b, dna_scheme, P=2, config=config)
        assert par.score == seq.score
        assert par.gapped_a == seq.gapped_a

        tiles = inst.tracer.find("wavefront.tile")
        assert tiles, "expected wavefront tile spans"
        assert {t.attrs["phase"] for t in tiles} <= set(PHASE_NAMES)
        assert {t.attrs["region"] for t in tiles} <= {"fill", "base"}

        # Per-phase counters add up to the tile span count.
        counted = sum(
            inst.metrics.counter(f"wavefront.{p}_tiles").value for p in PHASE_NAMES
        )
        assert counted == len(tiles)

        # Tile wait histogram saw every dispatched tile.
        assert inst.metrics.histogram("wavefront.tile_wait").count == len(tiles)
        assert inst.tracer.find("wavefront.run")

    def test_phase_report_renders(self, rng, dna_scheme):
        a = random_dna(rng, 150)
        b = random_dna(rng, 150)
        with obs.instrumented() as inst:
            fastlsa(a, b, dna_scheme, config=AlignConfig(k=3, base_cells=1024))
        table = obs.phase_table(inst, m=150, n=150)
        assert "fastlsa.fillcache" in table
        assert "cells_filled=" in table
        assert "ops_ratio=" in table


# ----------------------------------------------------------------------
# service: stage spans and live metrics
# ----------------------------------------------------------------------
class TestServiceObservability:
    def test_job_spans_and_metrics(self, dna_scheme):
        import asyncio

        from repro.service import AlignmentService

        async def go(inst):
            async with AlignmentService(memory_cells=200_000, max_workers=2) as svc:
                r1 = await svc.align("ACGTACGTAC", "ACGTTCGTAC", dna_scheme)
                r2 = await svc.align("ACGTACGTAC", "ACGTTCGTAC", dna_scheme)
            return r1, r2

        with obs.instrumented() as inst:
            r1, r2 = asyncio.run(go(inst))
        assert r2.cached and r1.score == r2.score

        jobs = inst.tracer.find("service.job")
        assert len(jobs) == 2
        cached = [s for s in jobs if s.attrs.get("cached")]
        assert len(cached) == 1
        queued = inst.tracer.find("service.queue")
        assert queued and all(q.end is not None for q in queued)

        snap = inst.metrics.snapshot()
        assert snap["service.submitted"] == 2
        assert snap["service.completed"] >= 1
        assert snap["service.cache_hits"] == 1
        assert snap["service.job_wall_time"]["count"] == 1

    def test_stats_op_carries_metrics(self, dna_scheme):
        import asyncio

        from repro.service import AlignmentService, ProtocolHandler

        async def go():
            svc = AlignmentService(memory_cells=100_000)
            handler = ProtocolHandler(svc)
            async with svc:
                await handler.handle(
                    {"op": "align", "id": 1, "a": "ACGTACGT", "b": "ACGTTCGT"}
                )
                return await handler.handle({"op": "stats", "id": 2})

        with obs.instrumented():
            resp = asyncio.run(go())
        assert resp["ok"]
        metrics = resp["result"]["metrics"]
        assert metrics["service.submitted"] == 1

        # Without instrumentation the stats op omits the metrics object.
        resp_off = asyncio.run(go())
        assert "metrics" not in resp_off["result"]
