"""Tests for the LRU set-associative cache simulator."""

import pytest

from repro.errors import ConfigError
from repro.memsim import CacheConfig, CacheSim


class TestConfig:
    def test_geometry(self):
        c = CacheConfig(capacity_cells=1024, line_cells=8, assoc=4)
        assert c.n_lines == 128
        assert c.n_sets == 32

    def test_validation(self):
        with pytest.raises(ConfigError):
            CacheConfig(capacity_cells=0)
        with pytest.raises(ConfigError):
            CacheConfig(capacity_cells=100, line_cells=8, assoc=4)  # not a multiple


class TestCacheSim:
    def test_cold_miss_then_hit(self):
        sim = CacheSim(CacheConfig(64, line_cells=8, assoc=8))
        assert not sim.access_cell(0)
        assert sim.access_cell(0)
        assert sim.access_cell(7)   # same line
        assert not sim.access_cell(8)  # next line

    def test_lru_eviction_fully_associative(self):
        # capacity 4 lines of 1 cell, 1 set of 4 ways.
        sim = CacheSim(CacheConfig(4, line_cells=1, assoc=4))
        for addr in range(4):
            sim.access_cell(addr)
        sim.access_cell(0)      # touch 0 -> MRU
        sim.access_cell(4)      # evicts 1 (LRU)
        assert sim.access_cell(0)
        assert not sim.access_cell(1)

    def test_set_conflicts(self):
        # 2 sets, 1 way each: lines 0 and 2 map to set 0 and conflict.
        sim = CacheSim(CacheConfig(2, line_cells=1, assoc=1))
        sim.access_cell(0)
        sim.access_cell(2)
        assert not sim.access_cell(0)

    def test_access_range(self):
        sim = CacheSim(CacheConfig(1024, line_cells=8, assoc=8))
        sim.access_range(0, 64)  # 8 lines
        assert sim.stats.accesses == 8
        sim.access_range(0, 64)
        assert sim.stats.hits == 8

    def test_access_range_partial_lines(self):
        sim = CacheSim(CacheConfig(1024, line_cells=8, assoc=8))
        sim.access_range(6, 4)  # spans lines 0 and 1
        assert sim.stats.accesses == 2

    def test_empty_range(self):
        sim = CacheSim(CacheConfig(64, line_cells=8, assoc=8))
        sim.access_range(10, 0)
        assert sim.stats.accesses == 0

    def test_reset(self):
        sim = CacheSim(CacheConfig(64, line_cells=8, assoc=8))
        sim.access_cell(0)
        sim.reset()
        assert sim.stats.accesses == 0
        assert not sim.access_cell(0)  # cold again

    def test_run_iterable(self):
        sim = CacheSim(CacheConfig(64, line_cells=8, assoc=8))
        stats = sim.run([0, 1, 0, 1])
        assert stats.hits == 2 and stats.misses == 2

    def test_time_estimate(self):
        sim = CacheSim(CacheConfig(64, line_cells=8, assoc=8))
        sim.run([0, 0, 0])
        assert sim.stats.time_estimate(1, 40) == 40 + 2

    def test_miss_rate(self):
        sim = CacheSim(CacheConfig(64, line_cells=8, assoc=8))
        assert sim.stats.miss_rate == 0.0
        sim.run([0, 0])
        assert sim.stats.miss_rate == 0.5
