"""Tests for the alignment service scheduler: queue, batching, shutdown."""

import asyncio
import time

import pytest

from repro.errors import ServiceClosedError
from repro.scoring import ScoringScheme, dna_simple, linear_gap
from repro.service import AlignmentClient, AlignmentService


@pytest.fixture
def scheme():
    return ScoringScheme(dna_simple(), linear_gap(-6))


PAIRS = [
    ("ACGTACGTAC", "ACGTTCGTAC"),
    ("ACGTACGTAC", "ACGAACGTAC"),
    ("GGGTACGTAC", "ACGTTCGTAC"),
    ("ACGTACGTAC", "TTTTTTTTTT"),
    ("ACGTAC", "ACGTTC"),
    ("ACGT", "TGCA"),
]


class TestOrdering:
    def test_single_worker_completes_fifo(self, scheme):
        """With one worker and batching off, completion order is FIFO."""

        async def go():
            done_order = []
            async with AlignmentService(
                memory_cells=200_000, max_workers=1, max_batch=1, cache_size=0
            ) as svc:
                jobs = []
                for a, b in PAIRS:
                    job = await svc.submit(a, b, scheme)
                    job.future.add_done_callback(
                        lambda _f, jid=job.job_id: done_order.append(jid)
                    )
                    jobs.append(job)
                await asyncio.gather(*(j.future for j in jobs))
                return done_order, [j.job_id for j in jobs]

        done_order, submit_order = asyncio.run(go())
        assert done_order == submit_order

    def test_align_many_preserves_input_order(self, scheme):
        async def go():
            async with AlignmentService(memory_cells=200_000, max_workers=2) as svc:
                results = await svc.align_many(PAIRS, scheme, mode="global")
                return [(r.a_name, r.b_name, r.score) for r in results], results

        rows, results = asyncio.run(go())
        assert len(rows) == len(PAIRS)
        # order matches submission, independent of completion interleaving
        for (a, b), result in zip(PAIRS, results):
            assert result.score_only is False


class TestMicroBatching:
    def test_shared_query_jobs_coalesce(self, scheme):
        """Queued one-vs-many requests collapse into one batch_align call."""

        async def go():
            async with AlignmentService(
                memory_cells=400_000, max_workers=1, max_batch=8, cache_size=0
            ) as svc:
                query = "ACGTACGTACGTACGT"
                targets = ["ACGTTCGTACGTACGA", "ACGAACGTAC", "GGGGGGGG", "ACGT"]
                results = await svc.align_many(
                    [(query, t) for t in targets], scheme, mode="local"
                )
                return results, svc.stats()

        results, stats = asyncio.run(go())
        assert all(r.batch_size == len(results) for r in results)
        assert stats["batches"] == 1
        assert stats["batched_jobs"] == len(results)

    def test_distinct_modes_do_not_coalesce(self, scheme):
        async def go():
            async with AlignmentService(
                memory_cells=400_000, max_workers=1, max_batch=8, cache_size=0
            ) as svc:
                q = "ACGTACGTAC"
                j1 = await svc.submit(q, "ACGTTCGTAC", scheme, mode="global")
                j2 = await svc.submit(q, "ACGTTCGTAC", scheme, mode="local")
                r1, r2 = await asyncio.gather(j1.future, j2.future)
                return r1, r2

        r1, r2 = asyncio.run(go())
        assert r1.batch_size == 1 and r2.batch_size == 1
        assert r1.mode == "global" and r2.mode == "local"

    def test_batched_results_match_unbatched(self, scheme):
        """Coalescing is an optimisation, not a semantics change."""

        async def solo(mode):
            async with AlignmentService(
                memory_cells=400_000, max_workers=1, max_batch=1, cache_size=0
            ) as svc:
                return await svc.align_many(
                    [("ACGTACGTAC", t) for t in ("ACGTTCGTAC", "GGGG", "ACGTAC")],
                    scheme, mode=mode,
                )

        async def grouped(mode):
            async with AlignmentService(
                memory_cells=400_000, max_workers=1, max_batch=8, cache_size=0
            ) as svc:
                return await svc.align_many(
                    [("ACGTACGTAC", t) for t in ("ACGTTCGTAC", "GGGG", "ACGTAC")],
                    scheme, mode=mode,
                )

        for mode in ("global", "local", "semiglobal", "overlap"):
            a = asyncio.run(solo(mode))
            b = asyncio.run(grouped(mode))
            assert [r.score for r in a] == [r.score for r in b], mode
            assert [(r.gapped_a, r.gapped_b) for r in a] == \
                   [(r.gapped_a, r.gapped_b) for r in b], mode


class TestShutdown:
    def test_drain_completes_queued_jobs(self, scheme):
        async def go():
            svc = AlignmentService(memory_cells=200_000, max_workers=2)
            await svc.start()
            jobs = [await svc.submit(a, b, scheme) for a, b in PAIRS]
            await svc.close(drain=True)
            return [j.future.result() for j in jobs]

        results = asyncio.run(go())
        assert len(results) == len(PAIRS)
        assert all(r.score is not None for r in results)

    def test_drain_false_fails_queued_jobs(self, scheme, monkeypatch):
        async def go():
            svc = AlignmentService(
                memory_cells=200_000, max_workers=1, max_batch=1, cache_size=0
            )
            # keep the single worker busy so later jobs stay queued
            real = svc._compute_group

            def slow(group):
                time.sleep(0.1)
                return real(group)

            monkeypatch.setattr(svc, "_compute_group", slow)
            await svc.start()
            jobs = [await svc.submit(a, b, scheme) for a, b in PAIRS]
            await asyncio.sleep(0.02)  # let the dispatcher start job 1
            await svc.close(drain=False)
            return jobs

        jobs = asyncio.run(go())
        outcomes = []
        for job in jobs:
            try:
                job.future.result()
                outcomes.append("done")
            except ServiceClosedError:
                outcomes.append("closed")
        assert "closed" in outcomes  # queued work was abandoned...
        assert outcomes[0] == "done"  # ...but in-flight work completed

    def test_submit_after_close_rejected(self, scheme):
        async def go():
            svc = AlignmentService(memory_cells=200_000)
            await svc.start()
            await svc.close()
            with pytest.raises(ServiceClosedError):
                await svc.submit("ACGT", "ACGA", scheme)

        asyncio.run(go())

    def test_submit_without_start_rejected(self, scheme):
        async def go():
            svc = AlignmentService(memory_cells=200_000)
            with pytest.raises(ServiceClosedError):
                await svc.submit("ACGT", "ACGA", scheme)

        asyncio.run(go())


class TestClient:
    def test_sync_client_roundtrip(self, scheme):
        with AlignmentClient(memory_cells=200_000, max_workers=2) as client:
            result = client.align("ACGTACGT", "ACGTTCGT", scheme)
            assert result.score == 31
            assert result.gapped_a and result.gapped_b
            many = client.align_many(PAIRS[:3], scheme, mode="local")
            assert len(many) == 3
            assert client.stats()["jobs_completed"] == 4
            assert len(client.stats_rows()) == 4

    def test_client_submit_future(self, scheme):
        with AlignmentClient(memory_cells=200_000) as client:
            fut = client.submit("ACGT", "ACGA", scheme, mode="semiglobal")
            assert fut.result(timeout=10).mode == "semiglobal"

    def test_client_not_started_rejects(self, scheme):
        client = AlignmentClient(memory_cells=200_000)
        with pytest.raises(ServiceClosedError):
            client.align("ACGT", "ACGA", scheme)
