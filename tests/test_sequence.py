"""Tests for repro.align.sequence."""

import pytest

from repro.align import Sequence
from repro.align.sequence import as_sequence
from repro.errors import SequenceError


class TestSequence:
    def test_basic(self):
        s = Sequence("ACGT", name="x")
        assert len(s) == 4
        assert s[0] == "A"
        assert list(s) == ["A", "C", "G", "T"]
        assert not s.is_empty

    def test_empty_allowed(self):
        assert Sequence("", name="empty").is_empty

    def test_whitespace_rejected(self):
        with pytest.raises(SequenceError):
            Sequence("AC GT", name="x")

    def test_empty_name_rejected(self):
        with pytest.raises(SequenceError):
            Sequence("ACGT", name="")

    def test_non_string_rejected(self):
        with pytest.raises(SequenceError):
            Sequence(b"ACGT", name="x")

    def test_immutable(self):
        s = Sequence("ACGT", name="x")
        with pytest.raises(Exception):
            s.text = "TTTT"

    def test_reversed(self):
        s = Sequence("ACGT", name="x")
        r = s.reversed()
        assert r.text == "TGCA"
        assert "rev" in r.name

    def test_slice(self):
        s = Sequence("ACGTAC", name="x")
        sub = s.slice(1, 4)
        assert sub.text == "CGT"

    def test_slice_bounds_checked(self):
        s = Sequence("ACGT", name="x")
        with pytest.raises(SequenceError):
            s.slice(3, 1)
        with pytest.raises(SequenceError):
            s.slice(0, 5)

    def test_slice_empty(self):
        assert Sequence("ACGT", name="x").slice(2, 2).is_empty


class TestAsSequence:
    def test_passthrough(self):
        s = Sequence("ACGT", name="x")
        assert as_sequence(s) is s

    def test_from_string(self):
        s = as_sequence("ACGT", name="auto")
        assert isinstance(s, Sequence)
        assert s.text == "ACGT"
        assert s.name == "auto"

    def test_rejects_other_types(self):
        with pytest.raises(SequenceError):
            as_sequence(42)
