"""Tests for the published scoring tables (BLOSUM62, PAM250, Table 1)."""

import numpy as np

from repro.scoring import (
    blosum62,
    dna_simple,
    dna_unit,
    pam250,
    paper_scheme,
    scaled_matrix,
    scaled_pam250,
    table1_matrix,
)


class TestTable1:
    """The exact fragment printed in the paper."""

    def test_alphabet(self):
        assert table1_matrix().alphabet == "ADKLTV"

    def test_diagonal(self):
        m = table1_matrix()
        assert m.score("A", "A") == 16
        for sym in "DKLTV":
            assert m.score(sym, sym) == 20

    def test_leucine_valine_similarity(self):
        m = table1_matrix()
        assert m.score("L", "V") == 12
        assert m.score("V", "L") == 12

    def test_lysine_leucine_dissimilarity(self):
        assert table1_matrix().score("K", "L") == 0

    def test_all_other_offdiagonals_zero(self):
        m = table1_matrix()
        for a in m.alphabet:
            for b in m.alphabet:
                if a != b and {a, b} != {"L", "V"}:
                    assert m.score(a, b) == 0, (a, b)

    def test_paper_scheme_gap(self):
        s = paper_scheme()
        assert s.gap.is_linear and s.gap_open == -10

    def test_paper_alignment_score_example(self):
        # Section 2.1: 20 - 10 + 20 - 10 + 12 + 20 + 20 - 10 + 20 = 82
        s = paper_scheme()
        total = (
            s.score_pair("T", "T") - 10 + s.score_pair("D", "D") - 10
            + s.score_pair("V", "L") + s.score_pair("L", "L")
            + s.score_pair("K", "K") - 10 + s.score_pair("D", "D")
        )
        assert total == 82


class TestBlosum62:
    def test_symmetry(self):
        t = blosum62().table
        assert np.array_equal(t, t.T)

    def test_known_values(self):
        m = blosum62()
        assert m.score("W", "W") == 11
        assert m.score("A", "A") == 4
        assert m.score("I", "L") == 2
        assert m.score("C", "C") == 9
        assert m.score("E", "Q") == 2
        assert m.score("G", "I") == -4
        assert m.score("P", "P") == 7

    def test_diagonal_positive(self):
        m = blosum62()
        for sym in m.alphabet:
            assert m.score(sym, sym) > 0


class TestPam250:
    def test_symmetry(self):
        t = pam250().table
        assert np.array_equal(t, t.T)

    def test_known_values(self):
        m = pam250()
        assert m.score("W", "W") == 17
        assert m.score("C", "C") == 12
        assert m.score("L", "V") == 2
        assert m.score("W", "C") == -8

    def test_diagonal_positive(self):
        m = pam250()
        for sym in m.alphabet:
            assert m.score(sym, sym) > 0


class TestScaled:
    def test_scaled_pam250_nonnegative(self):
        assert scaled_pam250().min_score() >= 0

    def test_scaled_preserves_order(self):
        base, scaled = pam250(), scaled_pam250()
        # Rescaling is affine: pairwise order of entries is preserved.
        assert (base.score("W", "W") > base.score("A", "A")) == (
            scaled.score("W", "W") > scaled.score("A", "A")
        )

    def test_scaled_matrix_explicit_offset(self):
        m = scaled_matrix(pam250(), scale=2, offset=100)
        assert m.score("W", "W") == 17 * 2 + 100

    def test_scaled_matrix_default_offset_makes_min_zero(self):
        m = scaled_matrix(pam250())
        assert m.min_score() == 0


class TestDna:
    def test_dna_simple(self):
        m = dna_simple()
        assert m.score("A", "A") == 5
        assert m.score("A", "T") == -4

    def test_dna_unit(self):
        m = dna_unit()
        assert m.score("G", "G") == 1
        assert m.score("G", "C") == 0
