"""Tests for repro.kernels.traceback and fullmatrix."""

import numpy as np
import pytest

from repro.align.path import Layer
from repro.align.validate import score_gapped
from repro.errors import PathError
from repro.kernels import (
    affine_boundaries,
    boundary_vectors,
    compute_full,
    trace_from,
    traceback_linear,
)
from repro.scoring import ScoringScheme, affine_gap, dna_simple
from tests.conftest import random_dna


def path_to_strings(points_fwd, a, b):
    """Reconstruct gapped strings from forward path points."""
    ga, gb = [], []
    for (i0, j0), (i1, j1) in zip(points_fwd, points_fwd[1:]):
        if (i1 - i0, j1 - j0) == (1, 1):
            ga.append(a[i0]); gb.append(b[j0])
        elif (i1 - i0, j1 - j0) == (1, 0):
            ga.append(a[i0]); gb.append("-")
        else:
            ga.append("-"); gb.append(b[j0])
    return "".join(ga), "".join(gb)


class TestTracebackLinear:
    def test_path_scores_optimally(self, rng, dna_scheme):
        for _ in range(25):
            M, N = rng.integers(1, 15, 2)
            a = random_dna(rng, M)
            b = random_dna(rng, N)
            ac, bc = dna_scheme.encode(a), dna_scheme.encode(b)
            fr, fc = boundary_vectors(M, N, -6)
            mats = compute_full(ac, bc, dna_scheme, fr, fc)
            pts, layer = trace_from(mats, ac, bc, dna_scheme, M, N)
            assert layer is Layer.H
            fwd = list(reversed([(M, N)] + pts))
            # complete to origin along the boundary
            i, j = fwd[0]
            prefix = []
            while i > 0 or j > 0:
                if i > 0:
                    i -= 1
                else:
                    j -= 1
                prefix.append((i, j))
            fwd = list(reversed(prefix)) + fwd
            ga, gb = path_to_strings(fwd, a, b)
            assert score_gapped(ga, gb, dna_scheme) == mats.score

    def test_stops_at_boundary(self, dna_scheme):
        ac = dna_scheme.encode("AAAA")
        bc = dna_scheme.encode("AAAA")
        fr, fc = boundary_vectors(4, 4, -6)
        mats = compute_full(ac, bc, dna_scheme, fr, fc)
        pts = traceback_linear(mats.H, ac, bc, dna_scheme.matrix.table, -6, 4, 4)
        assert pts[-1][0] == 0 or pts[-1][1] == 0

    def test_start_on_boundary_returns_empty(self, dna_scheme):
        ac = dna_scheme.encode("AA")
        bc = dna_scheme.encode("AA")
        fr, fc = boundary_vectors(2, 2, -6)
        mats = compute_full(ac, bc, dna_scheme, fr, fc)
        assert traceback_linear(mats.H, ac, bc, dna_scheme.matrix.table, -6, 0, 2) == []

    def test_inconsistent_matrix_detected(self, dna_scheme):
        ac = dna_scheme.encode("AA")
        bc = dna_scheme.encode("AA")
        H = np.zeros((3, 3), dtype=np.int64)
        H[2, 2] = 999  # unreachable value
        with pytest.raises(PathError):
            traceback_linear(H, ac, bc, dna_scheme.matrix.table, -6, 2, 2)

    def test_out_of_bounds_start(self, dna_scheme):
        H = np.zeros((3, 3), dtype=np.int64)
        ac = dna_scheme.encode("AA")
        with pytest.raises(PathError):
            traceback_linear(H, ac, ac, dna_scheme.matrix.table, -6, 5, 5)


class TestTracebackAffine:
    def test_path_scores_optimally(self, rng):
        scheme = ScoringScheme(dna_simple(), affine_gap(-9, -1))
        for _ in range(25):
            M, N = rng.integers(1, 15, 2)
            a = random_dna(rng, M)
            b = random_dna(rng, N)
            ac, bc = scheme.encode(a), scheme.encode(b)
            rh, rf, ch, ce = affine_boundaries(M, N, -9, -1)
            mats = compute_full(ac, bc, scheme, rh, ch, first_row_f=rf, first_col_e=ce)
            pts, _layer = trace_from(mats, ac, bc, scheme, M, N)
            fwd = list(reversed([(M, N)] + pts))
            i, j = fwd[0]
            prefix = []
            while i > 0 or j > 0:
                if i > 0:
                    i -= 1
                else:
                    j -= 1
                prefix.append((i, j))
            fwd = list(reversed(prefix)) + fwd
            ga, gb = path_to_strings(fwd, a, b)
            assert score_gapped(ga, gb, scheme) == mats.score

    def test_gap_run_stays_in_layer(self):
        # Force a long vertical gap: align AAAA vs A; optimal has one run.
        scheme = ScoringScheme(dna_simple(), affine_gap(-10, -1))
        ac, bc = scheme.encode("AAAA"), scheme.encode("A")
        rh, rf, ch, ce = affine_boundaries(4, 1, -10, -1)
        mats = compute_full(ac, bc, scheme, rh, ch, first_row_f=rf, first_col_e=ce)
        assert mats.score == 5 - 10 - 1 - 1


class TestComputeFull:
    def test_affine_requires_gap_caches(self, affine_scheme):
        ac = affine_scheme.encode("AR")
        with pytest.raises(ValueError):
            compute_full(ac, ac, affine_scheme,
                         np.zeros(3, np.int64), np.zeros(3, np.int64))

    def test_cells_property(self, dna_scheme, affine_dna_scheme):
        ac = dna_scheme.encode("ACG")
        fr, fc = boundary_vectors(3, 3, -6)
        lin = compute_full(ac, ac, dna_scheme, fr, fc)
        assert lin.cells == 16
        rh, rf, ch, ce = affine_boundaries(3, 3, -8, -1)
        aff = compute_full(ac, ac, affine_dna_scheme, rh, ch, first_row_f=rf, first_col_e=ce)
        assert aff.cells == 48  # three layers
