"""Tests for ends-free alignment modes (semiglobal / overlap)."""

import itertools

import pytest

from repro.align import check_alignment
from repro import AlignConfig
from repro.core.modes import (
    EndsFree,
    ends_free_align,
    overlap_align,
    semiglobal_align,
)
from repro.kernels.reference import ref_score_affine, ref_score_linear
from tests.conftest import random_dna

ALL_FLAGS = [
    EndsFree(**dict(zip(("a_start", "a_end", "b_start", "b_end"), bits)))
    for bits in itertools.product([False, True], repeat=4)
]


def brute_mode(a, b, scheme, free):
    """Boundary-convention reference: start on row 0 or col 0, end on the
    last row or last column, gated by the flags."""
    enc = scheme.encode
    tbl = scheme.matrix.table
    m, n = len(a), len(b)
    starts = {(0, 0)}
    if free.a_start:
        starts |= {(si, 0) for si in range(m + 1)}
    if free.b_start:
        starts |= {(0, sj) for sj in range(n + 1)}
    best = None
    for si, sj in starts:
        ends = {(m, n)}
        if free.a_end:
            ends |= {(ei, n) for ei in range(m + 1)}
        if free.b_end:
            ends |= {(m, ej) for ej in range(n + 1)}
        for ei, ej in ends:
            if ei < si or ej < sj:
                continue
            if scheme.is_linear:
                s = ref_score_linear(enc(a[si:ei]), enc(b[sj:ej]), tbl, scheme.gap_open)
            else:
                s = ref_score_affine(
                    enc(a[si:ei]), enc(b[sj:ej]), tbl, scheme.gap_open, scheme.gap_extend
                )
            best = s if best is None else max(best, s)
    return best


class TestAllFlagCombinations:
    @pytest.mark.parametrize("scheme_name", ["dna_scheme", "affine_dna_scheme"])
    def test_against_brute_force(self, rng, request, scheme_name):
        scheme = request.getfixturevalue(scheme_name)
        for _ in range(5):
            a = random_dna(rng, int(rng.integers(0, 8)))
            b = random_dna(rng, int(rng.integers(0, 8)))
            for free in ALL_FLAGS:
                got = ends_free_align(a, b, scheme, free, config=AlignConfig(k=2, base_cells=16))
                assert got.score == brute_mode(a, b, scheme, free), (a, b, free)

    def test_no_flags_is_global(self, rng, dna_scheme):
        from repro.core import fastlsa

        a, b = random_dna(rng, 30), random_dna(rng, 35)
        ef = ends_free_align(a, b, dna_scheme, EndsFree())
        assert ef.score == fastlsa(a, b, dna_scheme).score
        assert (ef.a_start, ef.a_end, ef.b_start, ef.b_end) == (0, 30, 0, 35)


class TestSemiglobal:
    def test_query_found_inside_target(self, dna_scheme):
        sg = semiglobal_align("ACGTACGT", "TTTTTACGTACGTTTTT", dna_scheme)
        assert sg.score == 8 * 5
        assert (sg.b_start, sg.b_end) == (5, 13)
        assert (sg.a_start, sg.a_end) == (0, 8)

    def test_query_fully_consumed(self, rng, dna_scheme):
        q = random_dna(rng, 20)
        t = random_dna(rng, 60)
        sg = semiglobal_align(q, t, dna_scheme)
        assert sg.a_start == 0 and sg.a_end == 20

    def test_inner_alignment_valid(self, rng, dna_scheme):
        q, t = random_dna(rng, 25), random_dna(rng, 70)
        sg = semiglobal_align(q, t, dna_scheme)
        ok, msg = check_alignment(sg.alignment, dna_scheme)
        assert ok, msg

    def test_beats_global_when_target_longer(self, rng, dna_scheme):
        from repro.core import fastlsa

        q = random_dna(rng, 15)
        t = "AAAA" + q + "GGGG"
        sg = semiglobal_align(q, t, dna_scheme)
        assert sg.score == 15 * 5
        assert sg.score > fastlsa(q, t, dna_scheme).score

    def test_affine(self, rng, affine_dna_scheme):
        q = random_dna(rng, 12)
        t = "TT" + q + "CCCC"
        sg = semiglobal_align(q, t, affine_dna_scheme)
        assert sg.score == 12 * 5


class TestOverlap:
    def test_suffix_prefix_dovetail(self, dna_scheme):
        ov = overlap_align("TTTTACGTACGT", "ACGTACGTCCCC", dna_scheme)
        assert ov.score == 8 * 5
        assert ov.a_start == 4
        assert ov.b_end == 8

    def test_no_overlap_yields_short_or_empty_core(self, dna_scheme):
        ov = overlap_align("AAAAAAA", "TTTTTTT", dna_scheme)
        assert ov.score >= 0  # skipping everything scores 0

    def test_render_contains_score(self, dna_scheme):
        ov = overlap_align("TTACGT", "ACGTCC", dna_scheme)
        assert f"score={ov.score}" in ov.render()


class TestEdgeCases:
    def test_empty_sequences(self, dna_scheme):
        for free in (EndsFree(), EndsFree(b_start=True, b_end=True)):
            ef = ends_free_align("", "", dna_scheme, free)
            assert ef.score == 0

    def test_empty_query_semiglobal(self, dna_scheme):
        sg = semiglobal_align("", "ACGT", dna_scheme)
        assert sg.score == 0  # skip the whole target

    def test_empty_target(self, dna_scheme):
        sg = semiglobal_align("ACGT", "", dna_scheme)
        assert sg.score == dna_scheme.gap.cost(4)
