"""Property-based tests for the extension features.

Covers the Myers–Miller affine baseline, the ends-free modes, banded
alignment, the score-only API and the ambiguity-extended matrices.
"""

from hypothesis import given, settings, strategies as st

from repro.baselines import needleman_wunsch
from repro import AlignConfig
from repro.baselines.myers_miller import myers_miller
from repro.core import (
    EndsFree,
    align_score,
    banded_align,
    ends_free_align,
    fastlsa,
    overlap_align,
    semiglobal_align,
)
from repro.align import check_alignment
from repro.scoring import ScoringScheme, affine_gap, dna_simple, dna_with_n, linear_gap

DNA = st.text(alphabet="ACGT", max_size=20)
DNA_N = st.text(alphabet="ACGTN", max_size=20)
GAPS = st.integers(min_value=-10, max_value=-1)


def linear_scheme(gap):
    return ScoringScheme(dna_simple(), linear_gap(gap))


@st.composite
def affine_schemes(draw):
    extend = draw(st.integers(min_value=-4, max_value=-1))
    open_ = draw(st.integers(min_value=extend - 8, max_value=extend))
    return ScoringScheme(dna_simple(), affine_gap(open_, extend))


class TestMyersMillerProperties:
    @settings(max_examples=30, deadline=None)
    @given(a=DNA, b=DNA, scheme=affine_schemes(), base=st.sampled_from([16, 120]))
    def test_equals_nw(self, a, b, scheme, base):
        mm = myers_miller(a, b, scheme, base_cells=base)
        assert mm.score == needleman_wunsch(a, b, scheme).score
        assert check_alignment(mm, scheme)[0]

    @settings(max_examples=20, deadline=None)
    @given(a=DNA, scheme=affine_schemes())
    def test_self_alignment_gapless(self, a, scheme):
        mm = myers_miller(a, a, scheme, base_cells=16)
        assert mm.num_gap_columns == 0
        assert mm.score == sum(scheme.score_pair(c, c) for c in a)


class TestModeProperties:
    @settings(max_examples=25, deadline=None)
    @given(a=DNA, b=DNA, gap=GAPS)
    def test_freedoms_never_hurt(self, a, b, gap):
        """Adding any end freedom can only raise the score."""
        scheme = linear_scheme(gap)
        global_score = needleman_wunsch(a, b, scheme).score
        for free in (
            EndsFree(b_start=True, b_end=True),
            EndsFree(a_start=True, b_end=True),
            EndsFree(a_start=True, a_end=True),
        ):
            assert ends_free_align(a, b, scheme, free, config=AlignConfig(k=2, base_cells=16)).score >= global_score

    @settings(max_examples=25, deadline=None)
    @given(a=DNA, b=DNA, gap=GAPS)
    def test_semiglobal_consumes_query(self, a, b, gap):
        scheme = linear_scheme(gap)
        sg = semiglobal_align(a, b, scheme, config=AlignConfig(k=2, base_cells=16))
        assert sg.a_start == 0 and sg.a_end == len(a)

    @settings(max_examples=25, deadline=None)
    @given(a=DNA, b=DNA, gap=GAPS)
    def test_overlap_anchored(self, a, b, gap):
        """Overlap mode anchors a's end and b's start."""
        scheme = linear_scheme(gap)
        ov = overlap_align(a, b, scheme, config=AlignConfig(k=2, base_cells=16))
        assert ov.a_end == len(a)
        assert ov.b_start == 0


class TestBandedProperties:
    @settings(max_examples=25, deadline=None)
    @given(a=DNA, b=DNA, gap=GAPS, w=st.integers(1, 8))
    def test_lower_bound_and_valid(self, a, b, gap, w):
        scheme = linear_scheme(gap)
        res = banded_align(a, b, scheme, width=w)
        assert res.alignment.score <= needleman_wunsch(a, b, scheme).score
        assert check_alignment(res.alignment, scheme)[0]

    @settings(max_examples=25, deadline=None)
    @given(a=DNA, b=DNA, gap=GAPS)
    def test_monotone_in_width(self, a, b, gap):
        scheme = linear_scheme(gap)
        prev = None
        for w in (1, 3, 9, 30):
            s = banded_align(a, b, scheme, width=w).alignment.score
            if prev is not None:
                assert s >= prev
            prev = s


class TestScoreOnlyProperties:
    @settings(max_examples=30, deadline=None)
    @given(a=DNA, b=DNA, gap=GAPS, k=st.integers(2, 5))
    def test_score_matches_fastlsa(self, a, b, gap, k):
        scheme = linear_scheme(gap)
        assert align_score(a, b, scheme) == fastlsa(a, b, scheme, config=AlignConfig(k=k, base_cells=16)).score


class TestAmbiguityProperties:
    @settings(max_examples=20, deadline=None)
    @given(a=DNA_N, b=DNA_N, gap=GAPS)
    def test_alignment_with_ambiguity_codes(self, a, b, gap):
        scheme = ScoringScheme(dna_with_n(), linear_gap(gap))
        al = fastlsa(a, b, scheme, config=AlignConfig(k=2, base_cells=16))
        assert check_alignment(al, scheme)[0]
        assert al.score == needleman_wunsch(a, b, scheme).score
