"""Tests for repro.align.validate (the independent re-scorer)."""

import pytest

from repro.align import AlignmentPath, score_gapped, check_alignment, check_path_bounds
from repro.align.alignment import Alignment, alignment_from_path
from repro.align.sequence import Sequence
from repro.errors import AlignmentError, PathError
from repro.scoring import ScoringScheme, affine_gap, dna_simple


class TestScoreGapped:
    def test_matches(self, dna_scheme):
        assert score_gapped("ACGT", "ACGT", dna_scheme) == 20

    def test_mismatch(self, dna_scheme):
        assert score_gapped("A", "C", dna_scheme) == -4

    def test_linear_gap_runs(self, dna_scheme):
        assert score_gapped("A--A", "ACGA", dna_scheme) == 5 - 6 - 6 + 5

    def test_affine_gap_run(self):
        s = ScoringScheme(dna_simple(), affine_gap(-10, -1))
        assert score_gapped("A---A", "ACGTA", s) == 5 - 10 - 1 - 1 + 5

    def test_affine_runs_in_both_sequences_charged_separately(self):
        s = ScoringScheme(dna_simple(), affine_gap(-10, -1))
        # A gap run in a followed immediately by a run in b: two opens.
        assert score_gapped("A-C", "AG-", s) == 5 - 10 - 10

    def test_adjacent_same_sequence_runs_merge(self):
        s = ScoringScheme(dna_simple(), affine_gap(-10, -1))
        assert score_gapped("A--G", "ACTG", s) == 5 - 10 - 1 + 5

    def test_gap_gap_rejected(self, dna_scheme):
        with pytest.raises(AlignmentError):
            score_gapped("A-", "A-", dna_scheme)

    def test_length_mismatch_rejected(self, dna_scheme):
        with pytest.raises(AlignmentError):
            score_gapped("AC", "A", dna_scheme)

    def test_empty(self, dna_scheme):
        assert score_gapped("", "", dna_scheme) == 0


class TestCheckPathBounds:
    def test_inside(self):
        check_path_bounds(AlignmentPath([(0, 0), (1, 1)]), 1, 1)

    def test_outside(self):
        with pytest.raises(PathError):
            check_path_bounds(AlignmentPath([(0, 0), (1, 1), (2, 2)]), 1, 1)


class TestCheckAlignment:
    def test_good(self, dna_scheme):
        al = alignment_from_path(
            "AC", "AC", AlignmentPath([(0, 0), (1, 1), (2, 2)]), score=10
        )
        ok, msg = check_alignment(al, dna_scheme)
        assert ok, msg

    def test_wrong_score_detected(self, dna_scheme):
        al = alignment_from_path(
            "AC", "AC", AlignmentPath([(0, 0), (1, 1), (2, 2)]), score=99
        )
        ok, msg = check_alignment(al, dna_scheme)
        assert not ok and "99" in msg

    def test_incomplete_path_detected(self, dna_scheme):
        al = Alignment(
            seq_a=Sequence("AC", name="a"),
            seq_b=Sequence("AC", name="b"),
            gapped_a="AC",
            gapped_b="AC",
            score=10,
            path=AlignmentPath([(0, 0), (1, 1)]),
        )
        ok, msg = check_alignment(al, dna_scheme)
        assert not ok and "path" in msg

    def test_path_string_mismatch_detected(self, dna_scheme):
        al = Alignment(
            seq_a=Sequence("AC", name="a"),
            seq_b=Sequence("AC", name="b"),
            gapped_a="AC",
            gapped_b="AC",
            score=10,
            # path implies gaps, strings do not
            path=AlignmentPath([(0, 0), (1, 0), (1, 1), (2, 2), (2, 2)][:4]),
        )
        ok, msg = check_alignment(al, dna_scheme)
        assert not ok
