"""Tests for the extended CLI (modes, score-only, matrix command)."""

import pytest

from repro.align import Sequence, write_fasta
from repro.cli import main


@pytest.fixture
def fasta_files(tmp_path):
    fa = tmp_path / "a.fasta"
    fb = tmp_path / "b.fasta"
    write_fasta(fa, [Sequence("TTTTACGTACGT", name="a")])
    write_fasta(fb, [Sequence("ACGTACGTCCCC", name="b")])
    return str(fa), str(fb)


class TestModes:
    def test_local(self, fasta_files, capsys):
        fa, fb = fasta_files
        assert main(["align", fa, fb, "--mode", "local", "--gap-open", "-6"]) == 0
        out = capsys.readouterr().out
        assert "local score=40" in out

    def test_overlap(self, fasta_files, capsys):
        fa, fb = fasta_files
        assert main(["align", fa, fb, "--mode", "overlap", "--gap-open", "-6"]) == 0
        out = capsys.readouterr().out
        assert "overlap score=40" in out
        assert "a[4:12]" in out

    def test_semiglobal(self, fasta_files, capsys):
        fa, fb = fasta_files
        assert main(["align", fa, fb, "--mode", "semiglobal", "--gap-open", "-6"]) == 0
        assert "semiglobal score=" in capsys.readouterr().out

    def test_score_only(self, fasta_files, capsys):
        fa, fb = fasta_files
        assert main(["align", fa, fb, "--score-only", "--gap-open", "-6"]) == 0
        out = capsys.readouterr().out.strip()
        assert out.lstrip("-").isdigit()


class TestMatrixCommand:
    @pytest.mark.parametrize("name", ["dna", "blosum62", "pam250", "table1"])
    def test_prints_matrix(self, name, capsys):
        assert main(["matrix", name]) == 0
        out = capsys.readouterr().out
        assert "# Matrix:" in out

    def test_table1_values(self, capsys):
        main(["matrix", "table1"])
        out = capsys.readouterr().out
        assert "16" in out and "12" in out


class TestMsaCommand:
    @pytest.fixture
    def family_fasta(self, tmp_path):
        path = tmp_path / "family.fasta"
        write_fasta(path, [
            Sequence("ACGTACGTACGT", name="s1"),
            Sequence("ACGTACGAACGT", name="s2"),
            Sequence("ACGTACGTACG", name="s3"),
        ])
        return str(path)

    @pytest.mark.parametrize("method", ["star", "progressive"])
    def test_msa(self, family_fasta, capsys, method):
        assert main(["msa", family_fasta, "--method", method]) == 0
        out = capsys.readouterr().out
        assert f"{method} MSA: 3 sequences" in out
        assert "s1" in out and "s3" in out

    def test_msa_single_record_is_clean_error(self, tmp_path, capsys):
        path = tmp_path / "one.fasta"
        write_fasta(path, [Sequence("ACGT", name="only")])
        assert main(["msa", str(path)]) == 2
        assert "error:" in capsys.readouterr().err


class TestMatrixFile:
    def test_align_with_matrix_file(self, fasta_files, tmp_path, capsys):
        from repro.scoring import dna_simple, write_matrix

        fa, fb = fasta_files
        mpath = tmp_path / "custom.mat"
        write_matrix(mpath, dna_simple(match=9, mismatch=-9))
        assert main([
            "align", fa, fb, "--matrix-file", str(mpath), "--gap-open", "-6"
        ]) == 0
        assert "score=" in capsys.readouterr().out
