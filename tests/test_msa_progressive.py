"""Tests for progressive MSA (UPGMA + profile-profile alignment)."""

import numpy as np
import pytest

from repro.align import Sequence
from repro.errors import ConfigError
from repro.msa import (
    MultipleAlignment,
    align_profiles,
    center_star_msa,
    progressive_msa,
    upgma_tree,
)
from repro.workloads import evolve, random_sequence


@pytest.fixture
def family(rng):
    anc = random_sequence(90, "ACGT", rng, name="anc")
    return [anc] + [
        evolve(anc, sub_rate=0.05 * i, indel_rate=0.02, rng=rng,
               alphabet="ACGT", name=f"d{i}")
        for i in range(1, 5)
    ]


class TestUpgma:
    def test_merges_closest_first(self):
        d = np.array([[0, 1, 5], [1, 0, 5], [5, 5, 0]], dtype=float)
        root = upgma_tree(d)
        assert set(root.members) == {0, 1, 2}
        child_sets = {frozenset(root.left.members), frozenset(root.right.members)}
        assert frozenset({0, 1}) in child_sets
        assert frozenset({2}) in child_sets

    def test_single_item(self):
        root = upgma_tree(np.zeros((1, 1)))
        assert root.members == (0,)
        assert root.left is None

    def test_all_members_present(self, rng):
        n = 7
        d = rng.random((n, n))
        d = d + d.T
        np.fill_diagonal(d, 0)
        root = upgma_tree(d)
        assert sorted(root.members) == list(range(n))

    def test_non_square_rejected(self):
        with pytest.raises(ConfigError):
            upgma_tree(np.zeros((2, 3)))


class TestAlignProfiles:
    def leaf(self, text, name):
        s = Sequence(text, name=name)
        return MultipleAlignment(sequences=[s], rows=[s.text], center_index=0)

    def test_two_leaves_equals_pairwise_shape(self, dna_scheme):
        merged = align_profiles(
            self.leaf("ACGTACGT", "a"), self.leaf("ACGACGT", "b"), dna_scheme
        )
        assert len(merged) == 2
        assert merged.rows[0].replace("-", "") == "ACGTACGT"
        assert merged.rows[1].replace("-", "") == "ACGACGT"
        assert len(merged.rows[0]) == len(merged.rows[1])

    def test_identical_leaves_gapless(self, dna_scheme):
        merged = align_profiles(
            self.leaf("ACGT", "a"), self.leaf("ACGT", "b"), dna_scheme
        )
        assert merged.rows == ["ACGT", "ACGT"]

    def test_affine_rejected(self, affine_dna_scheme, dna_scheme):
        with pytest.raises(ConfigError):
            align_profiles(self.leaf("AC", "a"), self.leaf("AC", "b"), affine_dna_scheme)


class TestProgressiveMsa:
    def test_invariants(self, family, dna_scheme):
        msa = progressive_msa(family, dna_scheme)
        assert len(msa) == len(family)
        assert len({len(r) for r in msa.rows}) == 1
        texts = {s.text for s in msa.sequences}
        assert texts == {s.text for s in family}
        for seq, row in zip(msa.sequences, msa.rows):
            assert row.replace("-", "") == seq.text

    def test_quality_comparable_to_center_star(self, family, dna_scheme):
        star = center_star_msa(family, dna_scheme)
        prog = progressive_msa(family, dna_scheme)
        sp_star = star.sum_of_pairs_score(dna_scheme)
        sp_prog = prog.sum_of_pairs_score(dna_scheme)
        # Both are heuristics; progressive must be in the same league.
        assert sp_prog >= 0.85 * sp_star

    def test_identical_sequences(self, rng, dna_scheme):
        s = random_sequence(40, "ACGT", rng)
        msa = progressive_msa(
            [Sequence(s.text, name=f"c{i}") for i in range(4)], dna_scheme
        )
        assert msa.width == 40
        assert msa.conserved_columns() == 40

    def test_two_sequences(self, rng, dna_scheme):
        a = random_sequence(30, "ACGT", rng, name="a")
        b = random_sequence(28, "ACGT", rng, name="b")
        msa = progressive_msa([a, b], dna_scheme)
        assert len(msa) == 2

    def test_needs_two(self, dna_scheme):
        with pytest.raises(ConfigError):
            progressive_msa([Sequence("AC", name="x")], dna_scheme)

    def test_close_pairs_merge_first(self, rng, dna_scheme):
        """Two tight sub-families should each stay internally gap-aligned."""
        anc1 = random_sequence(60, "ACGT", rng, name="f1")
        anc2 = random_sequence(60, "ACGT", rng, name="f2")
        group1 = [anc1] + [evolve(anc1, sub_rate=0.02, indel_rate=0, rng=rng,
                                  alphabet="ACGT", name="f1b")]
        group2 = [anc2] + [evolve(anc2, sub_rate=0.02, indel_rate=0, rng=rng,
                                  alphabet="ACGT", name="f2b")]
        msa = progressive_msa(group1 + group2, dna_scheme)
        # Family members end up adjacent in the merged sequence order.
        names = [s.name for s in msa.sequences]
        i1, i1b = names.index("f1"), names.index("f1b")
        assert abs(i1 - i1b) == 1
