"""Tests for the MSA subpackage (center-star + profiles)."""

import numpy as np
import pytest

from repro.align import Sequence
from repro.errors import AlignmentError, ConfigError
from repro.msa import (
    MultipleAlignment,
    align_to_profile,
    build_profile,
    center_star_msa,
    merge_pairwise,
)
from repro.workloads import evolve, random_sequence


@pytest.fixture
def family(rng):
    ancestor = random_sequence(80, "ACGT", rng, name="anc")
    descendants = [
        evolve(ancestor, sub_rate=0.08, indel_rate=0.02, rng=rng,
               alphabet="ACGT", name=f"d{i}")
        for i in range(4)
    ]
    return [ancestor] + descendants


class TestCenterStar:
    def test_basic_invariants(self, family, dna_scheme):
        msa = center_star_msa(family, dna_scheme, k=4, base_cells=1024)
        assert len(msa) == len(family)
        widths = {len(r) for r in msa.rows}
        assert len(widths) == 1
        for seq, row in zip(msa.sequences, msa.rows):
            assert row.replace("-", "") == seq.text

    def test_identical_sequences_gapless(self, rng, dna_scheme):
        s = random_sequence(50, "ACGT", rng)
        copies = [Sequence(s.text, name=f"c{i}") for i in range(3)]
        msa = center_star_msa(copies, dna_scheme)
        assert msa.width == 50
        assert msa.conserved_columns() == 50

    def test_conservation_tracks_divergence(self, rng, dna_scheme):
        anc = random_sequence(100, "ACGT", rng, name="a")
        near = [evolve(anc, sub_rate=0.02, indel_rate=0.0, rng=rng, alphabet="ACGT", name=f"n{i}") for i in range(3)]
        far = [evolve(anc, sub_rate=0.5, indel_rate=0.0, rng=rng, alphabet="ACGT", name=f"f{i}") for i in range(3)]
        msa_near = center_star_msa([anc] + near, dna_scheme)
        msa_far = center_star_msa([anc] + far, dna_scheme)
        assert msa_near.conserved_columns() > msa_far.conserved_columns()

    def test_needs_two_sequences(self, dna_scheme):
        with pytest.raises(ConfigError):
            center_star_msa([Sequence("ACGT", name="x")], dna_scheme)

    def test_sum_of_pairs_score(self, family, dna_scheme):
        msa = center_star_msa(family, dna_scheme)
        sp = msa.sum_of_pairs_score(dna_scheme)
        # Must at least be positive for a homologous family.
        assert sp > 0

    def test_format_renders_all_rows(self, family, dna_scheme):
        msa = center_star_msa(family, dna_scheme)
        out = msa.format(width=40)
        for seq in msa.sequences:
            assert seq.name in out

    def test_ragged_rows_rejected(self):
        with pytest.raises(AlignmentError):
            MultipleAlignment(
                sequences=[Sequence("AC", name="x"), Sequence("A", name="y")],
                rows=["AC", "A"],
                center_index=0,
            )

    def test_misspelled_row_rejected(self):
        with pytest.raises(AlignmentError):
            MultipleAlignment(
                sequences=[Sequence("AC", name="x"), Sequence("AG", name="y")],
                rows=["AC", "AC"],
                center_index=0,
            )


class TestMergePairwise:
    def test_merge_preserves_pairwise_columns(self, rng, dna_scheme):
        """Each merged row, restricted to center-residue columns, must
        reproduce its pairwise alignment."""
        from repro.core import fastlsa

        center = random_sequence(60, "ACGT", rng, name="c")
        others = [
            evolve(center, sub_rate=0.1, indel_rate=0.05, rng=rng,
                   alphabet="ACGT", name=f"o{i}")
            for i in range(3)
        ]
        pairwise = [fastlsa(center, o, dna_scheme) for o in others]
        master, merged = merge_pairwise(center.text, pairwise)
        assert master.replace("-", "") == center.text
        for o, row in zip(others, merged):
            assert row.replace("-", "") == o.text
            assert len(row) == len(master)

    def test_wrong_center_rejected(self, rng, dna_scheme):
        from repro.core import fastlsa

        a = random_sequence(20, "ACGT", rng, name="a")
        b = random_sequence(20, "ACGT", rng, name="b")
        aln = fastlsa(a, b, dna_scheme)
        with pytest.raises(AlignmentError):
            merge_pairwise("TTTT", [aln])


class TestProfile:
    def test_frequencies(self, dna_scheme):
        msa = MultipleAlignment(
            sequences=[Sequence("AC", name="x"), Sequence("AG", name="y")],
            rows=["AC", "AG"],
            center_index=0,
        )
        prof = build_profile(msa, dna_scheme)
        assert prof.width == 2
        a_idx = dna_scheme.alphabet.index("A")
        assert prof.freqs[0, a_idx] == pytest.approx(1.0)
        assert prof.gap_fraction[0] == 0.0

    def test_gap_fraction(self, dna_scheme):
        msa = MultipleAlignment(
            sequences=[Sequence("AC", name="x"), Sequence("A", name="y")],
            rows=["AC", "A-"],
            center_index=0,
        )
        prof = build_profile(msa, dna_scheme)
        assert prof.gap_fraction[1] == pytest.approx(0.5)

    def test_consensus(self, family, dna_scheme):
        msa = center_star_msa(family, dna_scheme)
        prof = build_profile(msa, dna_scheme)
        cons = prof.consensus()
        assert len(cons) == msa.width

    def test_alphabet_mismatch_rejected(self):
        from repro.scoring import ScoringScheme, identity_matrix, linear_gap

        msa = MultipleAlignment(
            sequences=[Sequence("AC", name="x"), Sequence("AC", name="y")],
            rows=["AC", "AC"],
            center_index=0,
        )
        scheme = ScoringScheme(identity_matrix("XY"), linear_gap(-1))
        with pytest.raises(ConfigError):
            build_profile(msa, scheme)


class TestAlignToProfile:
    def test_member_scores_high(self, family, dna_scheme):
        msa = center_star_msa(family, dna_scheme)
        prof = build_profile(msa, dna_scheme)
        member = align_to_profile(family[0], prof, dna_scheme)
        stranger = align_to_profile(
            random_sequence(80, "ACGT", np.random.default_rng(5)), prof, dna_scheme
        )
        assert member.score > stranger.score

    def test_gapped_strings_consistent(self, family, dna_scheme):
        msa = center_star_msa(family, dna_scheme)
        prof = build_profile(msa, dna_scheme)
        res = align_to_profile(family[1], prof, dna_scheme)
        assert res.gapped_seq.replace("-", "") == family[1].text
        assert len(res.gapped_seq) == len(res.gapped_consensus)
        assert res.path.is_complete(len(family[1]), prof.width)

    def test_single_row_profile_equals_pairwise(self, rng, dna_scheme):
        """A one-sequence profile reduces to pairwise NW against it."""
        from repro.baselines import needleman_wunsch

        s = random_sequence(40, "ACGT", rng, name="s")
        msa = MultipleAlignment(sequences=[s], rows=[s.text], center_index=0)
        prof = build_profile(msa, dna_scheme)
        q = random_sequence(35, "ACGT", rng, name="q")
        res = align_to_profile(q, prof, dna_scheme)
        nw = needleman_wunsch(q, s, dna_scheme)
        assert res.score == nw.score

    def test_affine_rejected(self, family, affine_dna_scheme, dna_scheme):
        msa = center_star_msa(family, dna_scheme)
        prof = build_profile(msa, dna_scheme)
        with pytest.raises(ConfigError):
            align_to_profile("ACGT", prof, affine_dna_scheme)
