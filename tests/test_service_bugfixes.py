"""Regression tests for the PR-7 bugfix sweep.

Four bugs, each pinned by a test that fails on the old behaviour:

1. **Group deadlines** — a coalesced batch used to be failed wholesale at
   the *earliest* member's deadline; now only the members whose own
   deadline passed are failed and the survivors keep running.
2. **Singleflight follower deadlines** — a deduplicated follower used to
   inherit the primary's lifetime (its own ``timeout`` was ignored), and
   its result was indistinguishable from a cache hit.  Now the follower's
   deadline fires independently and shared results are marked
   ``deduped`` (not ``cached``).
3. **Half-open breaker** — the half-open state used to admit every
   concurrent caller at once, re-hammering a recovering backend.  Now it
   admits exactly one in-flight trial, and a deadline-abandoned trial
   releases the slot.
4. **Unbounded protocol memos** — ``ProtocolHandler`` memoised every
   distinct scheme/index key forever; the memos are now LRU-bounded and
   the ``gap_extend`` key is normalised to ``int`` like ``gap_open``.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.baselines import needleman_wunsch
from repro.core.score_only import align_score
from repro.errors import JobTimeoutError
from repro.scoring import ScoringScheme, dna_simple, linear_gap
from repro.service import AlignmentService, CircuitBreaker, ProtocolHandler
from repro.service.server import _INDEX_MEMO_CAPACITY, _SCHEME_MEMO_CAPACITY
from repro.workloads import dna_pair


@pytest.fixture
def scheme():
    return ScoringScheme(dna_simple(), linear_gap(-6))


def _run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=60))


class TestGroupDeadlines:
    def test_expired_member_dropped_survivors_complete(self, scheme):
        """In a coalesced batch, only the job whose own deadline passed
        fails; the other members still run to the correct answer."""
        # Large enough to hold the single worker for a while even on
        # the compiled kernel tier (~1 GCell/s).
        blocker_a, blocker_b = dna_pair(14000, seed=3)
        query = "ACGTACGTACGTACGTACGTACGTACGT"
        targets = ["ACGTTCGTACGTACGAACGTACGTACGA", "ACGAACGTACGTACGTACGTACGTAGGT"]

        async def go():
            async with AlignmentService(
                memory_cells=400_000, max_workers=1, max_batch=8, cache_size=0
            ) as svc:
                # Occupy the single worker so the group sits queued long
                # enough for the short deadline to expire.
                blocker = await svc.submit(blocker_a, blocker_b, scheme)
                await asyncio.sleep(0.05)
                doomed = await svc.submit(
                    query, targets[0], scheme, timeout=0.02
                )
                survivor = await svc.submit(
                    query, targets[1], scheme, timeout=30.0
                )
                outcomes = await asyncio.gather(
                    doomed.future, survivor.future, blocker.future,
                    return_exceptions=True,
                )
                return outcomes, svc.stats()

        (doomed_out, survivor_out, blocker_out), stats = _run(go())
        assert isinstance(doomed_out, JobTimeoutError)
        assert not isinstance(survivor_out, BaseException)
        assert not isinstance(blocker_out, BaseException)
        want = needleman_wunsch(query, targets[1], scheme).score
        assert survivor_out.score == want
        assert stats["jobs_timed_out"] == 1
        assert stats["jobs_completed"] == 2

    def test_no_deadline_group_unaffected(self, scheme):
        """Deadline-free jobs never hit the timeout path."""

        async def go():
            async with AlignmentService(
                memory_cells=400_000, max_workers=1, max_batch=4, cache_size=0
            ) as svc:
                results = await svc.align_many(
                    [("ACGTACGTAC", "ACGTTCGTAC"), ("ACGTACGTAC", "ACGAACGTAC")],
                    scheme,
                )
                return results, svc.stats()

        results, stats = _run(go())
        assert stats["jobs_timed_out"] == 0
        assert all(r.score is not None for r in results)


class TestFollowerDeadlines:
    def test_follower_times_out_while_primary_completes(self, scheme):
        """A singleflight follower's own (shorter) deadline fails *it*,
        not the primary it piggybacks on."""
        # Sized so the primary is still in flight when the follower's
        # deadline expires, on either kernel tier.
        a, b = dna_pair(14000, seed=7)

        async def go():
            async with AlignmentService(
                memory_cells=600_000, max_workers=1, max_batch=1, cache_size=8
            ) as svc:
                primary = await svc.submit(a.text, b.text, scheme)
                await asyncio.sleep(0.05)  # let the primary reach a worker
                follower = await svc.submit(
                    a.text, b.text, scheme, timeout=0.02
                )
                follower_out, primary_out = await asyncio.gather(
                    follower.future, primary.future, return_exceptions=True
                )
                return follower_out, primary_out, svc.stats()

        follower_out, primary_out, stats = _run(go())
        assert isinstance(follower_out, JobTimeoutError)
        assert "in-flight" in str(follower_out)
        assert not isinstance(primary_out, BaseException)
        # linear-space reference: a dense NW matrix at this size would
        # need gigabytes.
        assert primary_out.score == align_score(a, b, scheme)
        assert stats["jobs_timed_out"] == 1

    def test_follower_result_marked_deduped_not_cached(self, scheme):
        a, b = dna_pair(200, seed=9)

        async def go():
            async with AlignmentService(
                memory_cells=400_000, max_workers=1, max_batch=1, cache_size=8
            ) as svc:
                primary = await svc.submit(a.text, b.text, scheme)
                follower = await svc.submit(a.text, b.text, scheme)
                p, f = await asyncio.gather(primary.future, follower.future)
                # A later identical request is a *cache* hit, not a dedup.
                later = await (
                    await svc.submit(a.text, b.text, scheme)
                ).future
                return p, f, later, svc.stats()

        p, f, later, stats = _run(go())
        assert not p.cached and not p.deduped
        assert f.deduped and not f.cached
        assert later.cached and not later.deduped
        assert stats["dedup_hits"] == 1
        assert stats["cache_hits"] == 1


class TestHalfOpenBreaker:
    def _tripped(self, clock):
        br = CircuitBreaker(failure_threshold=1, reset_after=5.0, clock=clock)
        br.record_failure()
        assert br.state == CircuitBreaker.OPEN
        return br

    def test_half_open_admits_exactly_one_trial(self):
        now = [0.0]
        br = self._tripped(lambda: now[0])
        assert not br.allow()  # still open
        now[0] = 6.0
        assert br.state == CircuitBreaker.HALF_OPEN
        assert br.allow()  # the one trial
        # Concurrent callers fast-fail while the trial is in flight.
        assert not br.allow()
        assert not br.allow()
        assert br.stats()["trial_inflight"] is True
        br.record_success()
        assert br.state == CircuitBreaker.CLOSED
        assert br.allow()

    def test_abandoned_trial_releases_the_slot(self):
        now = [0.0]
        br = self._tripped(lambda: now[0])
        now[0] = 6.0
        assert br.allow()
        assert not br.allow()
        br.abandon_trial()  # deadline expiry: no verdict on the backend
        assert br.state == CircuitBreaker.HALF_OPEN
        assert br.allow()  # next caller gets to probe
        br.record_failure()
        assert br.state == CircuitBreaker.OPEN

    def test_failed_trial_reopens(self):
        now = [0.0]
        br = self._tripped(lambda: now[0])
        now[0] = 6.0
        assert br.allow()
        br.record_failure()
        assert br.state == CircuitBreaker.OPEN
        assert not br.allow()

    def test_stale_success_never_closes_open_breaker(self):
        """A success from a call admitted before the breaker opened must
        not close it — only the half-open trial's success may."""
        now = [0.0]
        br = self._tripped(lambda: now[0])
        br.record_success()  # stale: no trial in flight
        assert br.state == CircuitBreaker.OPEN


class TestBoundedProtocolMemos:
    def _handler(self):
        return ProtocolHandler(AlignmentService(memory_cells=200_000))

    def test_scheme_memo_is_lru_bounded(self):
        handler = self._handler()
        for gap in range(1, 3 * _SCHEME_MEMO_CAPACITY):
            handler.scheme_for({"matrix": "dna", "gap_open": -gap})
        assert len(handler._schemes) <= _SCHEME_MEMO_CAPACITY
        assert _INDEX_MEMO_CAPACITY >= 1  # index memo bounded too

    def test_gap_extend_key_normalised_to_int(self):
        """``gap_extend: -1`` and ``gap_extend: -1.0`` are one memo entry
        (and one scheme object), like ``gap_open`` always was."""
        handler = self._handler()
        s1 = handler.scheme_for({"matrix": "dna", "gap_open": -6, "gap_extend": -1})
        s2 = handler.scheme_for(
            {"matrix": "dna", "gap_open": -6.0, "gap_extend": -1.0}
        )
        assert s1 is s2
        assert len(handler._schemes) == 1
