"""Tests for the batch (database search) API and the Gantt renderer."""

import pytest

from repro.align import check_alignment
from repro import AlignConfig
from repro.core import batch_align
from repro.errors import ConfigError
from repro.parallel import TileGrid, list_schedule, render_gantt, schedule_gantt
from repro.workloads import evolve, random_sequence


@pytest.fixture
def database(rng):
    query = random_sequence(60, "ACGT", rng, name="query")
    related = [
        evolve(query, sub_rate=0.05 * i, indel_rate=0.02, rng=rng,
               alphabet="ACGT", name=f"rel{i}")
        for i in (1, 2, 3)
    ]
    strangers = [random_sequence(60, "ACGT", rng, name=f"bg{i}") for i in range(4)]
    return query, related, strangers


class TestBatchAlign:
    def test_ranking_separates_family(self, database, dna_scheme):
        query, related, strangers = database
        hits = batch_align(query, related + strangers, dna_scheme, mode="local", keep=3)
        assert [h.rank for h in hits] == list(range(1, len(hits) + 1))
        top_names = {h.target.name for h in hits[:3]}
        assert top_names <= {r.name for r in related}

    def test_scores_descending(self, database, dna_scheme):
        query, related, strangers = database
        hits = batch_align(query, related + strangers, dna_scheme, mode="global", keep=2)
        scores = [h.score for h in hits]
        assert scores == sorted(scores, reverse=True)

    def test_keep_limits_alignments(self, database, dna_scheme):
        query, related, strangers = database
        hits = batch_align(query, related + strangers, dna_scheme, keep=2)
        assert sum(1 for h in hits if h.alignment is not None) == 2
        assert all(h.alignment is None for h in hits[2:])

    @pytest.mark.parametrize("mode", ["global", "local", "semiglobal", "overlap"])
    def test_quick_scores_match_full(self, database, dna_scheme, mode):
        """The ranking sweep and the materialised alignment must agree —
        asserted internally; this just exercises every mode."""
        query, related, strangers = database
        hits = batch_align(query, related[:2] + strangers[:2], dna_scheme,
                           mode=mode, keep=4)
        for h in hits:
            assert h.alignment is not None
            assert h.a_range is not None and h.b_range is not None
            if len(h.alignment.seq_a) or len(h.alignment.seq_b):
                assert check_alignment(h.alignment, dna_scheme)[0]

    def test_min_score_filter(self, database, dna_scheme):
        query, related, strangers = database
        all_hits = batch_align(query, related + strangers, dna_scheme, keep=0)
        threshold = all_hits[2].score
        filtered = batch_align(query, related + strangers, dna_scheme,
                               keep=0, min_score=threshold)
        assert all(h.score >= threshold for h in filtered)
        assert len(filtered) < len(all_hits)

    def test_bad_mode_rejected(self, dna_scheme):
        with pytest.raises(ConfigError):
            batch_align("ACGT", ["ACGT"], dna_scheme, mode="sideways")

    def test_negative_keep_rejected(self, dna_scheme):
        with pytest.raises(ConfigError):
            batch_align("ACGT", ["ACGT"], dna_scheme, keep=-1)

    def test_empty_database(self, dna_scheme):
        assert batch_align("ACGT", [], dna_scheme) == []

    def test_concurrent_scoring_matches_sequential(self, database, dna_scheme):
        query, related, strangers = database
        targets = related + strangers
        seq = batch_align(query, targets, dna_scheme, mode="local", keep=2)
        par = batch_align(query, targets, dna_scheme, mode="local", keep=2,
                          config=AlignConfig(max_workers=3))
        assert [(h.target.name, h.score, h.rank) for h in seq] == \
               [(h.target.name, h.score, h.rank) for h in par]

    def test_shared_executor_not_shut_down(self, database, dna_scheme):
        from concurrent.futures import ThreadPoolExecutor

        query, related, strangers = database
        pool = ThreadPoolExecutor(max_workers=2)
        try:
            hits = batch_align(query, related, dna_scheme, keep=1, executor=pool)
            assert hits[0].rank == 1
            # the pool must remain usable afterwards
            assert pool.submit(lambda: 7).result(timeout=5) == 7
        finally:
            pool.shutdown(wait=True)

    def test_bad_max_workers_rejected(self, dna_scheme):
        with pytest.raises(ConfigError):
            batch_align("ACGT", ["ACGT"], dna_scheme,
                        config=AlignConfig(max_workers=0))


class TestGantt:
    def uniform_grid(self, R, C):
        return TileGrid(list(range(R + 1)), list(range(C + 1)))

    def test_renders_all_workers(self):
        tg = self.uniform_grid(4, 4)
        out = schedule_gantt(tg, 3, width=60)
        for w in range(3):
            assert f"worker {w}" in out

    def test_empty_schedule(self):
        assert "empty" in render_gantt({}, 2)

    def test_width_respected(self):
        tg = self.uniform_grid(3, 3)
        out = schedule_gantt(tg, 2, width=40)
        for line in out.splitlines()[:-1]:
            assert len(line) <= 40 + 12

    def test_spans_cover_schedule(self):
        tg = self.uniform_grid(2, 5)
        makespan, spans = list_schedule(tg, 2, lambda t: 1.0)
        out = render_gantt(spans, 2, width=50)
        assert f"{makespan:g}" in out

    def test_invalid_p(self):
        tg = self.uniform_grid(1, 1)
        _, spans = list_schedule(tg, 1, lambda t: 1.0)
        with pytest.raises(Exception):
            render_gantt(spans, 0)
