"""Tests for repro.scoring.gaps."""

import pytest

from repro.errors import ScoringError
from repro.scoring import GapModel, affine_gap, linear_gap


class TestLinearGap:
    def test_is_linear(self):
        g = linear_gap(-10)
        assert g.is_linear
        assert g.open == -10 and g.extend == -10

    def test_cost(self):
        g = linear_gap(-10)
        assert g.cost(0) == 0
        assert g.cost(1) == -10
        assert g.cost(5) == -50

    def test_zero_gap_allowed(self):
        assert linear_gap(0).cost(7) == 0


class TestAffineGap:
    def test_cost(self):
        g = affine_gap(-10, -2)
        assert g.cost(0) == 0
        assert g.cost(1) == -10
        assert g.cost(2) == -12
        assert g.cost(5) == -18

    def test_not_linear(self):
        assert not affine_gap(-10, -2).is_linear

    def test_negative_length_rejected(self):
        with pytest.raises(ScoringError):
            affine_gap(-10, -2).cost(-1)


class TestValidation:
    def test_positive_open_rejected(self):
        with pytest.raises(ScoringError):
            GapModel(open=1, extend=-1)

    def test_positive_extend_rejected(self):
        with pytest.raises(ScoringError):
            GapModel(open=-1, extend=1)

    def test_open_cheaper_than_extend_rejected(self):
        # The Gotoh scan decomposition requires open <= extend.
        with pytest.raises(ScoringError, match="open <= extend"):
            GapModel(open=-1, extend=-5)

    def test_non_integer_rejected(self):
        with pytest.raises(ScoringError):
            GapModel(open=-1.5, extend=-1.5)

    def test_repr(self):
        assert "LinearGap" in repr(linear_gap(-3))
        assert "AffineGap" in repr(affine_gap(-5, -1))
