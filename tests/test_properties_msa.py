"""Property-based tests for MSA, CIGAR and affine banded alignment."""

from hypothesis import given, settings, strategies as st

from repro.align import from_cigar, to_cigar
from repro.align.edit_distance import edit_distance
from repro.baselines import needleman_wunsch
from repro.core import banded_align
from repro.msa import center_star_msa, progressive_msa
from repro.scoring import ScoringScheme, affine_gap, dna_simple, linear_gap

DNA = st.text(alphabet="ACGT", max_size=18)
DNA_NONEMPTY = st.text(alphabet="ACGT", min_size=1, max_size=18)
GAPS = st.integers(min_value=-9, max_value=-1)


def linear_scheme(gap=-6):
    return ScoringScheme(dna_simple(), linear_gap(gap))


@st.composite
def affine_schemes(draw):
    extend = draw(st.integers(min_value=-3, max_value=-1))
    open_ = draw(st.integers(min_value=extend - 7, max_value=extend))
    return ScoringScheme(dna_simple(), affine_gap(open_, extend))


class TestMsaProperties:
    @settings(max_examples=15, deadline=None)
    @given(seqs=st.lists(DNA_NONEMPTY, min_size=2, max_size=5))
    def test_center_star_invariants(self, seqs):
        msa = center_star_msa(seqs, linear_scheme(), k=2, base_cells=64)
        assert len(msa) == len(seqs)
        assert len({len(r) for r in msa.rows}) == 1
        spelled = sorted(r.replace("-", "") for r in msa.rows)
        assert spelled == sorted(seqs)

    @settings(max_examples=15, deadline=None)
    @given(seqs=st.lists(DNA_NONEMPTY, min_size=2, max_size=5))
    def test_progressive_invariants(self, seqs):
        msa = progressive_msa(seqs, linear_scheme())
        assert len(msa) == len(seqs)
        assert len({len(r) for r in msa.rows}) == 1
        spelled = sorted(r.replace("-", "") for r in msa.rows)
        assert spelled == sorted(seqs)

    @settings(max_examples=10, deadline=None)
    @given(s=DNA_NONEMPTY, n=st.integers(2, 4))
    def test_identical_family_is_trivial(self, s, n):
        msa = center_star_msa([s] * n, linear_scheme())
        assert msa.width == len(s)
        assert msa.conserved_columns() == len(s)


class TestCigarProperties:
    @settings(max_examples=30, deadline=None)
    @given(a=DNA, b=DNA, gap=GAPS)
    def test_roundtrip(self, a, b, gap):
        scheme = linear_scheme(gap)
        al = needleman_wunsch(a, b, scheme)
        back = from_cigar(a, b, to_cigar(al), score=al.score)
        assert back.gapped_a == al.gapped_a
        assert back.gapped_b == al.gapped_b

    @settings(max_examples=25, deadline=None)
    @given(a=DNA, b=DNA)
    def test_lengths_consistent(self, a, b):
        al = needleman_wunsch(a, b, linear_scheme())
        cigar = to_cigar(al)
        import re

        ops = re.findall(r"(\d+)([MID])", cigar)
        consumed_a = sum(int(n) for n, op in ops if op in "MI")
        consumed_b = sum(int(n) for n, op in ops if op in "MD")
        assert consumed_a == len(a)
        assert consumed_b == len(b)


class TestBandedAffineProperties:
    @settings(max_examples=25, deadline=None)
    @given(a=DNA_NONEMPTY, b=DNA_NONEMPTY, scheme=affine_schemes())
    def test_full_band_exact(self, a, b, scheme):
        res = banded_align(a, b, scheme, width=max(len(a), len(b)))
        assert res.alignment.score == needleman_wunsch(a, b, scheme).score

    @settings(max_examples=25, deadline=None)
    @given(a=DNA_NONEMPTY, b=DNA_NONEMPTY, scheme=affine_schemes(),
           w=st.integers(1, 6))
    def test_monotone_in_width(self, a, b, scheme, w):
        s1 = banded_align(a, b, scheme, width=w).alignment.score
        s2 = banded_align(a, b, scheme, width=w + 5).alignment.score
        assert s2 >= s1


class TestEditDistanceProperties:
    @settings(max_examples=30, deadline=None)
    @given(a=DNA, b=DNA)
    def test_bounds(self, a, b):
        d = edit_distance(a, b)
        assert abs(len(a) - len(b)) <= d <= max(len(a), len(b))

    @settings(max_examples=25, deadline=None)
    @given(a=DNA, b=DNA)
    def test_symmetry(self, a, b):
        assert edit_distance(a, b) == edit_distance(b, a)

    @settings(max_examples=20, deadline=None)
    @given(a=DNA, b=DNA, c=DNA)
    def test_triangle_inequality(self, a, b, c):
        assert edit_distance(a, c) <= edit_distance(a, b) + edit_distance(b, c)
