"""Tests for the threaded wavefront executor."""

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.errors import SchedulerError
from repro.parallel import TileGrid, run_wavefront


def uniform_grid(R, C, skip=None):
    return TileGrid(list(range(R + 1)), list(range(C + 1)), skip=skip)


class TestRunWavefront:
    def test_all_tiles_executed_once(self):
        tg = uniform_grid(5, 7)
        seen = []
        lock = threading.Lock()

        def worker(tile):
            with lock:
                seen.append((tile.r, tile.c))

        run_wavefront(tg, worker, n_threads=4)
        assert sorted(seen) == sorted((t.r, t.c) for t in tg.tiles())

    def test_dependency_order(self):
        tg = uniform_grid(4, 4)
        finished = {}
        order = [0]
        lock = threading.Lock()

        def worker(tile):
            with lock:
                for dep in tg.dependencies((tile.r, tile.c)):
                    assert dep in finished, f"{(tile.r, tile.c)} ran before {dep}"
                order[0] += 1
                finished[(tile.r, tile.c)] = order[0]

        run_wavefront(tg, worker, n_threads=3)
        assert len(finished) == 16

    def test_worker_exception_propagates(self):
        tg = uniform_grid(3, 3)

        def worker(tile):
            if (tile.r, tile.c) == (1, 1):
                raise ValueError("boom")

        with pytest.raises(ValueError, match="boom"):
            run_wavefront(tg, worker, n_threads=2)

    def test_skip_holes_handled(self):
        tg = uniform_grid(3, 3, skip={(2, 2)})
        seen = []
        lock = threading.Lock()

        def worker(tile):
            with lock:
                seen.append((tile.r, tile.c))

        run_wavefront(tg, worker, n_threads=2)
        assert len(seen) == 8 and (2, 2) not in seen

    def test_single_thread(self):
        tg = uniform_grid(2, 2)
        seen = []
        run_wavefront(tg, lambda t: seen.append((t.r, t.c)), n_threads=1)
        assert len(seen) == 4

    def test_invalid_threads(self):
        with pytest.raises(SchedulerError):
            run_wavefront(uniform_grid(1, 1), lambda t: None, n_threads=0)

    def test_injected_pool_survives_worker_failure(self):
        # A worker exception must leave the caller's pool clean and
        # reusable: no shutdown, no stray tiles still running.
        pool = ThreadPoolExecutor(max_workers=3)
        try:
            def bad(tile):
                if (tile.r, tile.c) == (1, 1):
                    raise ValueError("boom")

            with pytest.raises(ValueError, match="boom"):
                run_wavefront(uniform_grid(4, 4), bad, n_threads=3, pool=pool)

            # The pool still accepts plain work...
            assert pool.submit(lambda: 41 + 1).result(timeout=5) == 42

            # ...and a full wavefront run afterwards completes normally.
            seen = []
            lock = threading.Lock()

            def good(tile):
                with lock:
                    seen.append((tile.r, tile.c))

            tg = uniform_grid(3, 3)
            run_wavefront(tg, good, n_threads=3, pool=pool)
            assert sorted(seen) == sorted((t.r, t.c) for t in tg.tiles())
        finally:
            pool.shutdown(wait=True)

    def test_failed_run_leaves_no_stray_tiles(self):
        # After run_wavefront raises, no tile worker may still be
        # executing in the injected pool.
        pool = ThreadPoolExecutor(max_workers=2)
        try:
            running = [0]
            lock = threading.Lock()

            def slow_bad(tile):
                with lock:
                    running[0] += 1
                try:
                    if (tile.r, tile.c) == (0, 0):
                        raise ValueError("boom")
                    time.sleep(0.02)
                finally:
                    with lock:
                        running[0] -= 1

            with pytest.raises(ValueError):
                run_wavefront(uniform_grid(5, 5), slow_bad, n_threads=2, pool=pool)
            assert running[0] == 0
        finally:
            pool.shutdown(wait=True)

    def test_concurrency_actually_happens(self):
        # Independent tiles on a wavefront line should overlap in time.
        tg = uniform_grid(1, 4)  # a chain: no overlap possible
        tg2 = uniform_grid(4, 1)
        concurrent_peak = [0]
        active = [0]
        lock = threading.Lock()

        def worker(tile):
            with lock:
                active[0] += 1
                concurrent_peak[0] = max(concurrent_peak[0], active[0])
            time.sleep(0.01)
            with lock:
                active[0] -= 1

        # A 2x2 grid has a 2-tile wavefront line.
        run_wavefront(uniform_grid(2, 2), worker, n_threads=2)
        assert concurrent_peak[0] >= 2
