"""Tests for the lane-packed batch kernel tier (PR 10).

The batch kernels' whole contract is *bit-identity with the per-pair
providers*: any divergence — score, best-cell coordinates, tie-breaking,
or which lanes a floor prunes — would silently corrupt search rankings
and batch hits.  So almost everything here is differential: pack many
pairs into lanes, run both paths, compare exactly.  The floor tests
additionally check *soundness*: a pruned lane's true score must be below
the floor (pruning is an optimisation, never an answer change).
"""

import random

import numpy as np
import pytest

from repro.core.batch import batch_align
from repro.core.local import local_best_cell
from repro.core.score_only import align_score
from repro.kernels import batchdp, registry
from repro.scoring import ScoringScheme, affine_gap, dna_simple, linear_gap
from repro.search.engine import search
from repro.search.index import CorpusIndex

HAS_COMPILED = registry.compiled_available()
needs_compiled = pytest.mark.skipif(
    not HAS_COMPILED, reason="compiled kernel extension not built"
)

LIN = ScoringScheme(dna_simple(), linear_gap(-6))
AFF = ScoringScheme(dna_simple(), affine_gap(-10, -1))


def _rand_seq(rng, lo, hi):
    return "".join(rng.choice("ACGT") for _ in range(rng.randint(lo, hi)))


def _codes(scheme, text):
    return scheme.encode(text)


def _per_pair_local(scheme, a, b_list):
    triples = [local_best_cell(a, b, scheme) for b in b_list]
    return (
        np.array([t[0] for t in triples]),
        np.array([t[1] for t in triples]),
        np.array([t[2] for t in triples]),
    )


class TestPackLanes:
    def test_pack_shapes_and_padding(self):
        codes = [LIN.encode("ACGT"), LIN.encode("AC"), LIN.encode("")]
        pack, lens = batchdp.pack_lanes(codes)
        assert pack.shape == (3, 4)
        assert lens.tolist() == [4, 2, 0]
        # padding is code 0 and provably irrelevant (deps flow left only)
        assert pack[1, 2] == 0 and pack[2, 0] == 0

    def test_empty_batch(self):
        pack, lens = batchdp.pack_lanes([])
        assert pack.shape == (0, 0) and lens.shape == (0,)


class TestBatchBitIdentity:
    """Randomised differentials against the per-pair providers."""

    @pytest.mark.parametrize("scheme", [LIN, AFF], ids=["linear", "affine"])
    def test_best_cell_local_matches_per_pair(self, scheme):
        rng = random.Random(11)
        for trial in range(8):
            a = _rand_seq(rng, 1, 60)
            targets = [_rand_seq(rng, 0, 80) for _ in range(rng.randint(1, 17))]
            codes = [_codes(scheme, t) for t in targets]
            pack, lens = batchdp.pack_lanes(codes)
            provider = registry.get_batch_kernel("numpy")
            table = scheme.matrix.table
            if scheme.is_linear:
                s, bi, bj, pruned = provider.best_cell_local(
                    _codes(scheme, a), pack, lens, table, scheme.gap_open
                )
            else:
                s, bi, bj, pruned = provider.best_cell_local_affine(
                    _codes(scheme, a), pack, lens, table,
                    scheme.gap_open, scheme.gap_extend,
                )
            es, ebi, ebj = _per_pair_local(scheme, a, targets)
            assert not pruned.any()
            np.testing.assert_array_equal(s, es)
            np.testing.assert_array_equal(bi, ebi)
            np.testing.assert_array_equal(bj, ebj)

    @pytest.mark.parametrize("scheme", [LIN, AFF], ids=["linear", "affine"])
    def test_score_global_matches_align_score(self, scheme):
        rng = random.Random(5)
        for trial in range(6):
            a = _rand_seq(rng, 0, 50)
            targets = [_rand_seq(rng, 0, 70) for _ in range(rng.randint(1, 9))]
            pack, lens = batchdp.pack_lanes([_codes(scheme, t) for t in targets])
            provider = registry.get_batch_kernel("numpy")
            if scheme.is_linear:
                s = provider.score_global(
                    _codes(scheme, a), pack, lens, scheme.matrix.table,
                    scheme.gap_open,
                )
            else:
                s = provider.score_global_affine(
                    _codes(scheme, a), pack, lens, scheme.matrix.table,
                    scheme.gap_open, scheme.gap_extend,
                )
            expect = [align_score(a, t, scheme) for t in targets]
            assert s.tolist() == expect

    def test_single_lane_batch(self):
        # B=1 must behave exactly like the per-pair call, padding-free.
        a, b = "ACGTACGT", "AGGTACG"
        pack, lens = batchdp.pack_lanes([_codes(LIN, b)])
        s, bi, bj, _ = registry.get_batch_kernel("numpy").best_cell_local(
            _codes(LIN, a), pack, lens, LIN.matrix.table, LIN.gap_open
        )
        assert (int(s[0]), int(bi[0]), int(bj[0])) == local_best_cell(a, b, LIN)

    def test_ragged_and_empty_lanes(self):
        a = "ACGTACGTAC"
        targets = ["", "A", "ACGTACGTACGTACGT", "", "GT"]
        pack, lens = batchdp.pack_lanes([_codes(LIN, t) for t in targets])
        s, bi, bj, _ = registry.get_batch_kernel("numpy").best_cell_local(
            _codes(LIN, a), pack, lens, LIN.matrix.table, LIN.gap_open
        )
        es, ebi, ebj = _per_pair_local(LIN, a, targets)
        np.testing.assert_array_equal(s, es)
        np.testing.assert_array_equal(bi, ebi)
        np.testing.assert_array_equal(bj, ebj)

    def test_empty_query(self):
        # M=0: local best is the empty match everywhere; global is pure gaps.
        targets = ["ACG", ""]
        pack, lens = batchdp.pack_lanes([_codes(LIN, t) for t in targets])
        provider = registry.get_batch_kernel("numpy")
        s, bi, bj, _ = provider.best_cell_local(
            _codes(LIN, ""), pack, lens, LIN.matrix.table, LIN.gap_open
        )
        assert s.tolist() == [0, 0]
        g = provider.score_global(
            _codes(LIN, ""), pack, lens, LIN.matrix.table, LIN.gap_open
        )
        assert g.tolist() == [align_score("", t, LIN) for t in targets]


class TestFloorPruning:
    @pytest.mark.parametrize("scheme", [LIN, AFF], ids=["linear", "affine"])
    def test_pruned_lanes_are_truly_below_floor(self, scheme):
        rng = random.Random(23)
        for trial in range(6):
            a = _rand_seq(rng, 5, 50)
            targets = [_rand_seq(rng, 0, 60) for _ in range(12)]
            floor = rng.randint(1, 60)
            pack, lens = batchdp.pack_lanes([_codes(scheme, t) for t in targets])
            provider = registry.get_batch_kernel("numpy")
            if scheme.is_linear:
                s, bi, bj, pruned = provider.best_cell_local(
                    _codes(scheme, a), pack, lens, scheme.matrix.table,
                    scheme.gap_open, floor=floor,
                )
            else:
                s, bi, bj, pruned = provider.best_cell_local_affine(
                    _codes(scheme, a), pack, lens, scheme.matrix.table,
                    scheme.gap_open, scheme.gap_extend, floor=floor,
                )
            es, ebi, ebj = _per_pair_local(scheme, a, targets)
            for lane in range(len(targets)):
                if pruned[lane]:
                    # soundness: a pruned lane can never reach the floor
                    assert es[lane] < floor
                else:
                    # exactness: surviving lanes are bit-identical
                    assert (s[lane], bi[lane], bj[lane]) == (
                        es[lane], ebi[lane], ebj[lane],
                    )


@needs_compiled
class TestCompiledBatchParity:
    """The C batch kernels must match numpy lane-for-lane (the registry's
    import-time gate already checks fixed cases; this re-checks random
    ones, floors included)."""

    @pytest.mark.parametrize("scheme", [LIN, AFF], ids=["linear", "affine"])
    @pytest.mark.parametrize("floor", [None, 25], ids=["nofloor", "floor"])
    def test_best_cell_parity(self, scheme, floor):
        rng = random.Random(31)
        numpy_p = registry.get_batch_kernel("numpy")
        comp_p = registry.get_batch_kernel("compiled")
        assert comp_p.compiled
        for trial in range(6):
            a_codes = _codes(scheme, _rand_seq(rng, 0, 50))
            codes = [
                _codes(scheme, _rand_seq(rng, 0, 70))
                for _ in range(rng.randint(1, 15))
            ]
            pack, lens = batchdp.pack_lanes(codes)
            args = (a_codes, pack, lens, scheme.matrix.table)
            if scheme.is_linear:
                got = comp_p.best_cell_local(*args, scheme.gap_open, floor=floor)
                want = numpy_p.best_cell_local(*args, scheme.gap_open, floor=floor)
            else:
                got = comp_p.best_cell_local_affine(
                    *args, scheme.gap_open, scheme.gap_extend, floor=floor
                )
                want = numpy_p.best_cell_local_affine(
                    *args, scheme.gap_open, scheme.gap_extend, floor=floor
                )
            for g, w in zip(got, want):
                np.testing.assert_array_equal(g, w)

    @pytest.mark.parametrize("scheme", [LIN, AFF], ids=["linear", "affine"])
    def test_score_global_parity(self, scheme):
        rng = random.Random(37)
        numpy_p = registry.get_batch_kernel("numpy")
        comp_p = registry.get_batch_kernel("compiled")
        for trial in range(6):
            a_codes = _codes(scheme, _rand_seq(rng, 0, 40))
            pack, lens = batchdp.pack_lanes(
                [_codes(scheme, _rand_seq(rng, 0, 60))
                 for _ in range(rng.randint(1, 11))]
            )
            args = (a_codes, pack, lens, scheme.matrix.table)
            if scheme.is_linear:
                got = comp_p.score_global(*args, scheme.gap_open)
                want = numpy_p.score_global(*args, scheme.gap_open)
            else:
                got = comp_p.score_global_affine(
                    *args, scheme.gap_open, scheme.gap_extend
                )
                want = numpy_p.score_global_affine(
                    *args, scheme.gap_open, scheme.gap_extend
                )
            np.testing.assert_array_equal(got, want)


class TestSearchBatchDifferential:
    """Forcing the search tier-2 batch path must not change any result."""

    def _corpus(self, rng, n=60):
        seqs = [_rand_seq(rng, 30, 200) for _ in range(n)]
        q = _rand_seq(rng, 90, 110)
        for _ in range(5):
            s = list(q)
            for _ in range(rng.randint(0, 10)):
                s[rng.randrange(len(s))] = rng.choice("ACGT")
            seqs.append("".join(s))
        return q, CorpusIndex.build(seqs, "ACGT")

    @pytest.mark.parametrize("scheme", [LIN, AFF], ids=["linear", "affine"])
    def test_topk_identical_to_per_pair(self, scheme):
        rng = random.Random(43)
        q, idx = self._corpus(rng)
        per_pair = search(q, idx, scheme, top_k=7, lanes=0)
        batched = search(q, idx, scheme, top_k=7, lanes=32)
        tiny = search(q, idx, scheme, top_k=7, lanes=2)

        def key(result):
            return [
                (
                    h.name,
                    h.corpus_index,
                    h.score,
                    None
                    if h.local is None
                    else (h.local.a_start, h.local.a_end,
                          h.local.b_start, h.local.b_end),
                )
                for h in result.hits
            ]

        assert key(batched) == key(per_pair)
        assert key(tiny) == key(per_pair)
        # exactness bookkeeping still holds on the batch path
        total = per_pair.stats.pruned + per_pair.stats.scored
        assert batched.stats.pruned + batched.stats.scored == total

    def test_lanes_validation(self):
        rng = random.Random(47)
        q, idx = self._corpus(rng, n=8)
        with pytest.raises(Exception):
            search(q, idx, LIN, top_k=3, lanes=-1)


class TestBatchAlignDifferential:
    @pytest.mark.parametrize("mode", ["local", "global"])
    @pytest.mark.parametrize("scheme", [LIN, AFF], ids=["linear", "affine"])
    def test_hits_identical(self, mode, scheme):
        rng = random.Random(53)
        q = _rand_seq(rng, 80, 120)
        targets = [_rand_seq(rng, 20, 160) for _ in range(25)]
        a = batch_align(q, targets, scheme, mode=mode, keep=3, lanes=0)
        b = batch_align(q, targets, scheme, mode=mode, keep=3, lanes=8)
        assert [(h.score, h.rank, h.target.name) for h in a] == [
            (h.score, h.rank, h.target.name) for h in b
        ]
        assert [
            (str(h.alignment), h.a_range, h.b_range) for h in a if h.alignment
        ] == [(str(h.alignment), h.a_range, h.b_range) for h in b if h.alignment]


class TestObservability:
    def test_batch_sweep_metrics_exported(self):
        from repro.obs import runtime as obs

        rng = random.Random(59)
        q = _rand_seq(rng, 60, 80)
        targets = [_rand_seq(rng, 30, 90) for _ in range(20)]
        with obs.instrumented() as inst:
            batch_align(q, targets, LIN, mode="local", keep=0, lanes=8)
        snap = inst.metrics.snapshot()
        assert snap["batch.sweeps"] >= 1
        assert snap["batch.lane_occupancy"]["count"] >= 1
        assert 0.0 < snap["batch.lane_occupancy"]["max"] <= 1.0
        assert snap["batch.pad_waste"]["count"] >= 1
        assert 0.0 <= snap["batch.pad_waste"]["max"] < 1.0

    def test_search_batch_metrics_exported(self):
        from repro.obs import runtime as obs

        rng = random.Random(61)
        seqs = [_rand_seq(rng, 40, 120) for _ in range(30)]
        q = _rand_seq(rng, 60, 80)
        idx = CorpusIndex.build(seqs, "ACGT")
        with obs.instrumented() as inst:
            search(q, idx, LIN, top_k=5, lanes=16)
        snap = inst.metrics.snapshot()
        assert snap["search.batch.sweeps"] >= 1
        assert snap["search.batch.lane_occupancy"]["count"] >= 1
        assert snap["search.batch.pad_waste"]["count"] >= 1
