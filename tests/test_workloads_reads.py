"""Tests for the sequencing-read simulator and the summary tool."""

import pytest

from repro.errors import ConfigError
from repro import AlignConfig
from repro.workloads import random_sequence, sample_reads
from repro.workloads.reads import _revcomp


class TestSampleReads:
    def test_basic(self, rng):
        ref = random_sequence(500, "ACGT", rng)
        reads = sample_reads(ref, n_reads=10, read_len=50, seed=1)
        assert len(reads) == 10
        for r in reads:
            assert r.end - r.start == 50
            assert 0 <= r.start <= 450
            assert r.forward

    def test_zero_noise_reads_match_reference(self, rng):
        ref = random_sequence(300, "ACGT", rng)
        reads = sample_reads(ref, 5, 40, sub_rate=0, indel_rate=0, seed=2)
        for r in reads:
            assert r.read.text == ref.text[r.start : r.end]

    def test_noise_changes_reads(self, rng):
        ref = random_sequence(300, "ACGT", rng)
        reads = sample_reads(ref, 10, 100, sub_rate=0.2, indel_rate=0.05, seed=3)
        assert any(r.read.text != ref.text[r.start : r.end] for r in reads)

    def test_deterministic_by_seed(self, rng):
        ref = random_sequence(200, "ACGT", rng)
        r1 = sample_reads(ref, 5, 30, seed=7)
        r2 = sample_reads(ref, 5, 30, seed=7)
        assert [x.read.text for x in r1] == [x.read.text for x in r2]

    def test_revcomp_sampling(self, rng):
        ref = random_sequence(400, "ACGT", rng)
        reads = sample_reads(ref, 30, 50, sub_rate=0, indel_rate=0,
                             revcomp_fraction=1.0, seed=4)
        assert all(not r.forward for r in reads)
        for r in reads[:3]:
            assert r.read.text == _revcomp(ref.text[r.start : r.end])

    def test_revcomp_helper(self):
        assert _revcomp("ACGT") == "ACGT"
        assert _revcomp("AAGC") == "GCTT"

    def test_validation(self, rng):
        ref = random_sequence(100, "ACGT", rng)
        with pytest.raises(ConfigError):
            sample_reads(ref, 1, 0)
        with pytest.raises(ConfigError):
            sample_reads(ref, 1, 500)
        with pytest.raises(ConfigError):
            sample_reads(ref, -1, 10)
        with pytest.raises(ConfigError):
            sample_reads(ref, 1, 10, revcomp_fraction=2.0)

    def test_revcomp_requires_dna(self, rng):
        ref = random_sequence(100, "ARND", rng)
        with pytest.raises(ConfigError, match="ACGT"):
            sample_reads(ref, 1, 10, revcomp_fraction=0.5)

    def test_mappable(self, rng, dna_scheme):
        """Reads semiglobal-align back to near their true positions."""
        from repro.core import semiglobal_align

        ref = random_sequence(800, "ACGT", rng)
        for r in sample_reads(ref, 4, 120, sub_rate=0.03, seed=9):
            sg = semiglobal_align(r.read, ref, dna_scheme, config=AlignConfig(k=4))
            assert abs(sg.b_start - r.start) <= 15


class TestSummaryTool:
    def test_renders_results(self, tmp_path):
        from repro.analysis import ExperimentRecorder
        from repro.analysis.summary import main, summarize_dir

        rec = ExperimentRecorder("f9_speedup", out_dir=str(tmp_path))
        rec.add(P=1, speedup=1.0)
        rec.add(P=8, speedup=6.9)
        rec.save()
        out = summarize_dir(str(tmp_path))
        assert "f9_speedup" in out and "6.9" in out
        assert main([str(tmp_path)]) == 0

    def test_single_experiment_filter(self, tmp_path):
        from repro.analysis import ExperimentRecorder
        from repro.analysis.summary import summarize_dir

        for name in ("t2_ops", "f9_speedup"):
            rec = ExperimentRecorder(name, out_dir=str(tmp_path))
            rec.add(x=1)
            rec.save()
        out = summarize_dir(str(tmp_path), experiment="t2_ops")
        assert "t2_ops" in out and "f9_speedup" not in out

    def test_missing_dir_is_error(self, tmp_path):
        from repro.analysis.summary import main

        assert main([str(tmp_path / "nope")]) == 2
