"""Cache-simulator validation of the tuner's tile shaping (PR 9 satellite).

:func:`repro.tune.decision.tile_uv` narrows wavefront tiles until one
tile's rolling-row working set fits the cache capacity measured by the
calibration probe.  These tests validate that decision against the same
trace-driven simulator used by experiment F8 (``bench_f8_cache_sim.py``,
``CacheConfig(2048, 8, 8)``): the shaped tile must simulate at a miss
rate within tolerance of the best candidate shape, and dramatically below
an unshaped tile that overflows the cache.
"""

from __future__ import annotations

from repro.memsim import CacheConfig, CacheSim
from repro.parallel.tiles import default_uv
from repro.tune import CalibrationProfile, tile_uv
from repro.tune.decision import MIN_TILE_COLS, _working_set_layers
from repro.tune.profile import host_fingerprint

#: The F8 experiment's cache: 2048 cells ≈ 16 KiB of int64 DP entries.
F8_CACHE = CacheConfig(capacity_cells=2048, line_cells=8, assoc=8)


def _profile_with_cache(cache_cells: int) -> CalibrationProfile:
    """A synthetic profile whose measured BM sweep peaks at the simulated
    cache's capacity — the proxy tile_uv consumes."""
    host = {"cpu_count": 4, "platform": "Test", "machine": "sim", "python": "3"}
    host["fingerprint"] = host_fingerprint(host)
    return CalibrationProfile(
        host=host,
        kernels={"numpy": {"linear_cells_per_s": 1e8, "affine_cells_per_s": 4e7}},
        backends={"serial": {1: 1e8}, "threads": {2: 2e8, 4: 3e8}},
        handoff_s={"threads": 1e-5, "processes": 1e-5},
        band_fill_cells_per_s=0.0,
        base_sweep={cache_cells: 1e8, cache_cells * 8: 6e7},
        synthetic=True,
    )


def _tile_sweep_miss_rate(cache: CacheConfig, width: int, rows: int = 32) -> float:
    """Simulated miss rate of one tile fill: a rolling two-row sweep of
    ``width`` columns (the linear kernel's access pattern, as in
    ``memsim.trace._sweep_rows``)."""
    sim = CacheSim(cache)
    prev, cur = 0, width
    for i in range(rows):
        if i % 2 == 0:
            sim.access_range(prev, width)
            sim.access_range(cur, width)
        else:
            sim.access_range(cur, width)
            sim.access_range(prev, width)
    return sim.stats.miss_rate


class TestTileShapeVsSimulator:
    K = 4
    WORKERS = 2
    N = 65_536

    def _widths(self):
        profile = _profile_with_cache(F8_CACHE.capacity_cells)
        u, v = tile_uv(profile, self.WORKERS, self.K, self.N, self.N)
        _, v0 = default_uv(self.WORKERS, self.K)
        shaped = self.N // (self.K * v)
        unshaped = self.N // (self.K * v0)
        return shaped, unshaped, v, v0

    def test_shaped_working_set_fits_measured_cache(self):
        shaped, unshaped, v, v0 = self._widths()
        layers = _working_set_layers(False)
        assert v > v0  # the default tile would overflow this cache
        assert layers * shaped <= F8_CACHE.capacity_cells
        assert layers * unshaped > F8_CACHE.capacity_cells

    def test_shaped_tile_simulates_resident(self):
        shaped, unshaped, _, _ = self._widths()
        shaped_rate = _tile_sweep_miss_rate(F8_CACHE, shaped)
        unshaped_rate = _tile_sweep_miss_rate(F8_CACHE, unshaped)
        # The shaped tile stays cache-resident (compulsory misses only);
        # the unshaped tile thrashes every sweep.
        assert shaped_rate < 0.10
        assert unshaped_rate > 0.50
        assert shaped_rate < unshaped_rate / 5

    def test_shaped_tile_within_tolerance_of_best_candidate(self):
        """Over the whole candidate range the tuner could have picked,
        its choice simulates within 20% (relative) of the best miss
        rate — the decision agrees with the simulator, not just beats
        the default."""
        profile = _profile_with_cache(F8_CACHE.capacity_cells)
        _, v_choice = tile_uv(profile, self.WORKERS, self.K, self.N, self.N)
        _, v0 = default_uv(self.WORKERS, self.K)
        v_cap = self.N // (self.K * MIN_TILE_COLS)
        candidates = sorted({v0, v_choice, 2, 4, 8, 16, 32, 64, min(128, v_cap)})
        rates = {
            v: _tile_sweep_miss_rate(F8_CACHE, self.N // (self.K * v))
            for v in candidates
            if v >= v0
        }
        best = min(rates.values())
        assert rates[v_choice] <= best * 1.2 + 0.01

    def test_affine_layers_shape_narrower(self):
        profile = _profile_with_cache(F8_CACHE.capacity_cells)
        _, v_lin = tile_uv(profile, self.WORKERS, self.K, self.N, self.N,
                           affine=False)
        _, v_aff = tile_uv(profile, self.WORKERS, self.K, self.N, self.N,
                           affine=True)
        # (H, E, F) x 2 rolling rows vs H x 2: the affine working set is
        # 3x larger per column, so tiles must be at least as narrow.
        assert v_aff >= v_lin
        width_aff = self.N // (self.K * v_aff)
        assert _working_set_layers(True) * width_aff <= F8_CACHE.capacity_cells

    def test_floor_never_violated(self):
        profile = _profile_with_cache(64)  # absurdly tiny "cache"
        u, v = tile_uv(profile, self.WORKERS, self.K, self.N, self.N)
        # Even when the cache cannot possibly hold a MIN_TILE_COLS-wide
        # working set, the handoff floor wins over residency.
        assert self.N // (self.K * v) >= MIN_TILE_COLS


def test_agrees_with_f8_fastlsa_trace():
    """Anchor to F8 itself: a tile shaped for the F8 cache simulates at
    a miss rate no worse than the full FastLSA trace of the F8
    experiment (which includes grid-line traffic the tile fill lacks)."""
    from repro.memsim import compare_algorithms

    rows = compare_algorithms(256, 256, F8_CACHE, k=4, base_cells=1024)
    fastlsa_rate = next(r["miss_rate"] for r in rows if r["algorithm"] == "fastlsa")

    profile = _profile_with_cache(F8_CACHE.capacity_cells)
    n = 65_536
    _, v = tile_uv(profile, 2, 4, n, n)
    shaped_rate = _tile_sweep_miss_rate(F8_CACHE, n // (4 * v))
    assert shaped_rate <= fastlsa_rate + 0.05
