"""Tests for the FastLSAHooks extension points."""

from repro.core import FastLSAHooks, fastlsa, fill_grid
from repro import AlignConfig
from repro.kernels.fullmatrix import compute_full
from tests.conftest import random_dna


class TestFillHook:
    def test_custom_fill_invoked_per_general_case(self, rng, dna_scheme):
        calls = []

        def counting_fill(grid, a_codes, b_codes, scheme, counter, skip_bottom_right=True):
            calls.append((grid.problem.nrows, grid.problem.ncols, skip_bottom_right))
            fill_grid(grid, a_codes, b_codes, scheme, counter, skip_bottom_right)

        a, b = random_dna(rng, 120), random_dna(rng, 120)
        al = fastlsa(a, b, dna_scheme, config=AlignConfig(k=3, base_cells=64),
                     hooks=FastLSAHooks(fill=counting_fill))
        ref = fastlsa(a, b, dna_scheme, config=AlignConfig(k=3, base_cells=64))
        assert al.score == ref.score
        assert len(calls) > 1                         # recursion reached the hook
        assert calls[0] == (120, 120, True)           # top-level problem first
        assert all(skip for *_dims, skip in calls)

    def test_broken_fill_breaks_alignment(self, rng, dna_scheme):
        """The hook is load-bearing: corrupting grid lines corrupts scores."""

        def corrupting_fill(grid, a_codes, b_codes, scheme, counter, skip_bottom_right=True):
            fill_grid(grid, a_codes, b_codes, scheme, counter, skip_bottom_right)
            for p in range(1, len(grid.row_bounds) - 1):
                grid._row_h[p][:] = -999  # sabotage

        a, b = random_dna(rng, 80), random_dna(rng, 80)
        ref = fastlsa(a, b, dna_scheme, config=AlignConfig(k=3, base_cells=64))
        try:
            al = fastlsa(a, b, dna_scheme, config=AlignConfig(k=3, base_cells=64),
                         hooks=FastLSAHooks(fill=corrupting_fill))
            assert al.score != ref.score
        except Exception:
            pass  # inconsistent matrices may also fail traceback — fine


class TestBaseMatrixHook:
    def test_custom_base_matrix_invoked(self, rng, dna_scheme):
        calls = []

        def counting_base(*args, **kwargs):
            calls.append(args[0].shape if hasattr(args[0], "shape") else None)
            return compute_full(*args, **kwargs)

        a, b = random_dna(rng, 90), random_dna(rng, 90)
        al = fastlsa(a, b, dna_scheme, config=AlignConfig(k=3, base_cells=256),
                     hooks=FastLSAHooks(base_matrix=counting_base))
        ref = fastlsa(a, b, dna_scheme, config=AlignConfig(k=3, base_cells=256))
        assert al.score == ref.score
        assert len(calls) >= 1

    def test_default_hooks_are_sequential(self, rng, dna_scheme):
        hooks = FastLSAHooks()
        assert hooks.fill is fill_grid
        assert hooks.base_matrix is None
